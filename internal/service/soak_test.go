package service

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// loadSoakPrograms reads the workload corpus from the repository's
// testdata directory: a mix of planner-decidable (fast-lane) and
// residue-heavy programs.
func loadSoakPrograms(t *testing.T) []SoakProgram {
	t.Helper()
	var progs []SoakProgram
	for _, name := range []string{"handshake.evo", "burst.evo", "figure1.evo", "pipeline.evo"} {
		src, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, SoakProgram{Name: name, Source: string(src)})
	}
	return progs
}

// TestSoakMixedTraffic is the headline soak: mixed adversarial traffic
// (fast-lane and heavy matrix queries, async polls, resume chains, race
// queries, deadline storms, stalled clients) against a deliberately
// undersized server, under -race in CI. It asserts the load-shedding
// contract — every response is 200, 202, or 429; partials carry
// checkpoints; request IDs thread through — and that the drain leaves no
// goroutines or file descriptors behind. Runs 60s; 2s with -short.
func TestSoakMixedTraffic(t *testing.T) {
	dur := 60 * time.Second
	if testing.Short() {
		dur = 2 * time.Second
	}
	gBefore := runtime.NumGoroutine()
	fdBefore := CountOpenFDs()

	rep, err := RunSoak(context.Background(), SoakOptions{
		Duration:      dur,
		Clients:       6,
		StormClients:  2,
		SlowClients:   2,
		RequestBudget: 50000,
		Programs:      loadSoakPrograms(t),
		Server: Config{
			// Undersized on purpose: one heavy worker and a shallow queue
			// so shedding, throttling, and fast-lane isolation all engage;
			// the fast pool is wide enough that cheap requests only ever
			// wait on each other, not on scheduling luck.
			Workers:     1,
			FastWorkers: 4,
			QueueDepth:  8,
			CacheBytes:  1 << 16, // tiny: force evictions and misses
		},
	})
	if err != nil {
		t.Fatalf("RunSoak: %v", err)
	}

	for _, msg := range rep.Unexpected {
		t.Errorf("contract violation: %s", msg)
	}
	if rep.Requests == 0 {
		t.Fatal("soak issued no requests")
	}
	for code := range rep.Statuses {
		switch code {
		case 200, 202, 429:
		default:
			t.Errorf("status %d seen %d times; the contract allows only 200/202/429", code, rep.Statuses[code])
		}
	}
	if rep.Complete+rep.Partial == 0 {
		t.Error("no matrix results came back at all")
	}
	t.Logf("soak: %d requests, statuses=%v, complete=%d partial=%d shed=%d lanes=%v resumes=%d",
		rep.Requests, rep.Statuses, rep.Complete, rep.Partial, rep.Shed, rep.Lanes, rep.Resumes)
	t.Logf("queue wait: fast p99=%.3fms (%d samples), heavy p50=%.3fms p99=%.3fms (%d samples); analyze p50=%.1fms p99=%.1fms p999=%.1fms",
		rep.FastQueueWaitP99Ms, rep.FastSamples, rep.HeavyQueueWaitP50Ms, rep.HeavyQueueWaitP99Ms, rep.HeavySamples,
		rep.AnalyzeP50Ms, rep.AnalyzeP99Ms, rep.AnalyzeP999Ms)

	// Fast-lane isolation: planner-decidable requests must not queue
	// behind the NP-hard backlog. The p99-vs-p50 inversion needs the
	// heavy worker pinned for the whole run, which the race detector's
	// slowdown guarantees (the CI soak gate runs -race); at native speed
	// the heavy queue drains between bursts, heavy p50 wait sits near
	// zero, and the comparison is meaningless — EXPERIMENTS.md E19 covers
	// the native-speed regime via cmd/bench -soak's tail-to-tail numbers.
	if raceDetectorEnabled {
		if rep.FastSamples >= 20 && rep.HeavySamples >= 20 {
			if rep.FastQueueWaitP99Ms >= rep.HeavyQueueWaitP50Ms {
				t.Errorf("fast-lane p99 queue wait %.3fms is not below heavy p50 %.3fms",
					rep.FastQueueWaitP99Ms, rep.HeavyQueueWaitP50Ms)
			}
		} else if !testing.Short() {
			t.Errorf("lanes underpopulated in a full soak: fast=%d heavy=%d samples", rep.FastSamples, rep.HeavySamples)
		}
	}

	// Leak checks: the drain already completed inside RunSoak, so
	// everything the soak spawned (workers, per-request goroutines, timer
	// goroutines, stalled-client connections) must unwind.
	if n, ok := GoroutinesSettled(gBefore+4, 10*time.Second); !ok {
		t.Errorf("goroutines did not settle: %d before, %d after drain", gBefore, n)
	}
	if fdBefore >= 0 {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if fdAfter := CountOpenFDs(); fdAfter <= fdBefore+4 {
				break
			} else if time.Now().After(deadline) {
				t.Errorf("fd leak: %d before soak, %d after drain", fdBefore, fdAfter)
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// TestSoakShedEngages runs a short saturating soak with an aggressive
// shed threshold and checks that load shedding actually fired and that
// shed responses were served (the soundness of their partial verdicts is
// covered pair-by-pair in TestShedPartialSoundAgainstFullMatrix). Like
// the lane-inversion assertion above, "did shedding fire under organic
// traffic" is a property of a saturated heavy queue, so it is asserted
// only under -race (the CI gate); the contract checks always run, and
// deterministic shed coverage lives in the admission tests.
func TestSoakShedEngages(t *testing.T) {
	rep, err := RunSoak(context.Background(), SoakOptions{
		Duration:      2 * time.Second,
		Clients:       4,
		StormClients:  2,
		RequestBudget: 200000,
		Programs:      loadSoakPrograms(t),
		Server: Config{
			Workers:     1,
			QueueDepth:  8,
			ShedDepth:   1,
			ShedTimeout: 5 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("RunSoak: %v", err)
	}
	for _, msg := range rep.Unexpected {
		t.Errorf("contract violation: %s", msg)
	}
	if raceDetectorEnabled {
		if rep.Shed == 0 {
			t.Error("no requests were shed despite ShedDepth=1 under saturation")
		}
		if got := rep.Metrics.Counters[MetricJobsShed]; got == 0 {
			t.Error("jobs_shed counter is zero but shedding was expected")
		}
	}
}
