//go:build race

package service

// raceDetectorEnabled reports whether this test binary was built with
// -race. The soak tests use it to decide whether sustained saturation of
// the single heavy worker is guaranteed: the detector's ~10-20x slowdown
// keeps the heavy queue pinned, while at native speed the same traffic
// drains between bursts.
const raceDetectorEnabled = true
