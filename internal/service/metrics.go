package service

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Metric names used by the server. Grouped here so tests and operators
// have one place to look; the registry itself is generic.
const (
	// MetricRequests counts HTTP requests per endpoint as
	// "requests_<endpoint>" (e.g. requests_analyze).
	MetricRequests = "requests"
	// MetricCacheHits counts analysis responses served from the result
	// cache without any search.
	MetricCacheHits = "cache_hits"
	// MetricCacheMisses counts analysis requests that had to run a job.
	MetricCacheMisses = "cache_misses"
	// MetricCacheEvictions counts cache entries dropped to respect the
	// byte budget.
	MetricCacheEvictions = "cache_evictions"
	// MetricJobsRejected counts jobs refused because the queue was full
	// or the server was shutting down.
	MetricJobsRejected = "jobs_rejected"
	// MetricJobsCompleted counts jobs whose computation finished
	// (successfully or with an error), freeing their worker.
	MetricJobsCompleted = "jobs_completed"
	// MetricJobsDeadline counts jobs abandoned because their deadline
	// passed or their client went away.
	MetricJobsDeadline = "jobs_deadline_exceeded"
	// MetricQueueDepth gauges jobs admitted but not yet finished
	// (queued + running). It returns to 0 when every worker is idle.
	MetricQueueDepth = "queue_depth"
	// MetricJobsRunning gauges jobs currently executing on a worker.
	MetricJobsRunning = "jobs_running"
	// MetricCacheBytes gauges the bytes currently held by the result
	// cache.
	MetricCacheBytes = "cache_bytes"
	// MetricCacheEntries gauges the number of cached results.
	MetricCacheEntries = "cache_entries"
	// MetricLatency is the request latency histogram, in seconds, as
	// "latency_seconds_<endpoint>".
	MetricLatency = "latency_seconds"
	// MetricMemoEntries gauges the completion-memo entries of the most
	// recently finished search job (each job builds a private analyzer, so
	// this is a per-job sample, not a global sum).
	MetricMemoEntries = "memo_entries"
	// MetricMemoBytes gauges the heap bytes held by that job's completion
	// memo arrays.
	MetricMemoBytes = "memo_bytes"
	// MetricMemoLoadPermille gauges the memo table's load factor ×1000
	// (gauges are integral).
	MetricMemoLoadPermille = "memo_load_permille"
	// MetricMemoGrows counts memo-table capacity doublings across all
	// finished jobs.
	MetricMemoGrows = "memo_grow_total"
	// MetricAnalyzePartial counts matrix analyses that ended as partial
	// anytime results (deadline, cancellation, or budget exhaustion
	// struck mid-exploration; the response carried a checkpoint).
	MetricAnalyzePartial = "analyze_partial"
	// MetricAnalyzeResumed counts matrix requests that continued from a
	// client-supplied checkpoint.
	MetricAnalyzeResumed = "analyze_resumed"
	// MetricPlanPairs counts, per planner tier, the event pairs whose
	// verdicts that tier decided across all matrix jobs, as
	// "plan_pairs_<tier>" (plan_pairs_static, plan_pairs_observed,
	// plan_pairs_dag, and plan_pairs_exact for the residue the
	// exponential engine had to settle).
	MetricPlanPairs = "plan_pairs"
	// MetricSymmClasses gauges the process-symmetry class count the most
	// recent analysis detected (0 when the trace has no provable
	// automorphisms or symmetry is disabled).
	MetricSymmClasses = "symm_classes"
	// MetricSymmCollapses counts state keys the symmetry canonicalizer
	// rewrote onto a smaller orbit representative across all finished
	// jobs — the raw volume of exploration the orbit collapse avoided.
	MetricSymmCollapses = "symm_collapse_total"
	// MetricQueueWait is the per-lane queue-wait histogram family, in
	// seconds, log-bucketed, as "queue_wait_seconds_<lane>"
	// (queue_wait_seconds_fast, queue_wait_seconds_heavy): how long an
	// admitted job waited before a worker picked it up. The admission
	// contract the soak suite enforces is phrased over these — fast-lane
	// p99 must stay below heavy-pool p50.
	MetricQueueWait = "queue_wait_seconds"
	// MetricExploredNodes is the per-request search-effort histogram
	// (log-bucketed node counts): the cost distribution of an NP-hard
	// workload is the heavy tail this service is provisioned around, and
	// a mean hides exactly what matters about it.
	MetricExploredNodes = "explored_nodes"
	// MetricJobsThrottled counts submissions refused with 429 because the
	// accept queue was full (load shedding by refusal; Retry-After rides
	// on the response).
	MetricJobsThrottled = "jobs_throttled"
	// MetricJobsShed counts anytime requests whose deadline the server
	// clamped to the shed timeout under queue pressure (load shedding by
	// degradation: they answer 200 with a partial result and a resumable
	// checkpoint instead of queueing toward their full deadline).
	MetricJobsShed = "jobs_shed"
	// MetricJobsFastLane counts jobs routed to the cheap-request fast
	// lane (planner-decidable matrix queries).
	MetricJobsFastLane = "jobs_fast_lane"
	// MetricShedMode gauges whether the server is currently degrading
	// anytime requests (1 when the heavy queue is at or past the shed
	// depth, else 0). Sampled at each admission decision.
	MetricShedMode = "shed_mode"
	// MetricJournalReplayRecords counts journal records replayed at boot
	// (cumulative; one boot per process, so in practice the last boot's
	// replay size).
	MetricJournalReplayRecords = "journal_replay_records"
	// MetricJournalCorruptFrames counts corrupt journal frames detected at
	// boot: torn or bit-flipped WAL frames plus intact frames whose JSON
	// payload would not parse. Nonzero after an unclean crash is normal
	// (the torn tail); growth across boots is not.
	MetricJournalCorruptFrames = "journal_corrupt_frames"
	// MetricJournalRecords counts lifecycle records appended to the
	// write-ahead journal since boot.
	MetricJournalRecords = "journal_records_total"
	// MetricJournalSegments gauges the journal's live segment file count.
	MetricJournalSegments = "journal_segments"
	// MetricJobsRecovered counts async jobs re-enqueued from the journal
	// at boot (jobs that were accepted but not terminal when the previous
	// process died).
	MetricJobsRecovered = "jobs_recovered"
	// MetricJobsDrainCheckpointed counts anytime jobs whose drain-clipped
	// partial result was checkpointed for resumption on the next boot.
	MetricJobsDrainCheckpointed = "jobs_drain_checkpointed"
	// MetricStoreRehydrated counts result-cache entries restored from the
	// blob store at boot.
	MetricStoreRehydrated = "store_rehydrated"
)

// Log-bucketed histogram bounds. Queue waits and handler latencies span
// microseconds (cache hits, fast lane) to minutes (saturated heavy pool),
// and explored-node counts span 1 to 10^9 — both are power-law-ish, so
// geometric buckets hold relative error constant across the range where
// linear buckets would waste every low bucket.
var (
	// queueWaitBounds covers 10µs .. ~167s in ×4 steps.
	queueWaitBounds = LogBuckets(10e-6, 4, 13)
	// nodeBounds covers 1 .. ~2.6e8 explored nodes in ×8 steps.
	nodeBounds = LogBuckets(1, 8, 10)
)

// LogBuckets returns n geometric histogram upper bounds starting at start
// and multiplying by factor: {start, start·factor, ...}. start must be
// positive and factor > 1.
func LogBuckets(start, factor float64, n int) []float64 {
	bounds := make([]float64, n)
	v := start
	for i := range bounds {
		bounds[i] = v
		v *= factor
	}
	return bounds
}

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed upper-bound buckets
// (cumulative, Prometheus-style) plus a sum and count.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; implicit +Inf last
	counts []int64   // len(bounds)+1
	sum    float64
	count  int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// HistogramSnapshot is the JSON form of a histogram at one instant.
type HistogramSnapshot struct {
	// Count is the total number of observations.
	Count int64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum float64 `json:"sum"`
	// Buckets maps "le_<bound>" (upper bound, "le_inf" for the overflow
	// bucket) to the number of observations at or below that bound.
	Buckets map[string]int64 `json:"buckets"`
	// Bounds are the ascending finite upper bounds, and Cumulative the
	// matching cumulative counts plus one final entry for the overflow
	// (+Inf) bucket — the same data as Buckets in an order-preserving
	// shape quantile estimation can consume.
	Bounds     []float64 `json:"bounds"`
	Cumulative []int64   `json:"cumulative"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Count:      h.count,
		Sum:        h.sum,
		Buckets:    make(map[string]int64, len(h.counts)),
		Bounds:     append([]float64(nil), h.bounds...),
		Cumulative: make([]int64, len(h.counts)),
	}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		s.Buckets[fmt.Sprintf("le_%g", b)] = cum
		s.Cumulative[i] = cum
	}
	cum += h.counts[len(h.bounds)]
	s.Buckets["le_inf"] = cum
	s.Cumulative[len(h.bounds)] = cum
	return s
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the snapshot's
// buckets by linear interpolation inside the bucket the rank lands in.
// Observations in the overflow bucket are attributed its lower bound, so
// high quantiles are underestimated once the tail escapes the finite
// bounds — size the bounds so they don't. Returns 0 on an empty
// histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	prevCum := int64(0)
	lower := 0.0
	for i, b := range s.Bounds {
		cum := s.Cumulative[i]
		if float64(cum) >= rank {
			inBucket := cum - prevCum
			if inBucket == 0 {
				return b
			}
			frac := (rank - float64(prevCum)) / float64(inBucket)
			return lower + frac*(b-lower)
		}
		prevCum = cum
		lower = b
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Registry is an in-process metrics registry: named counters, gauges, and
// histograms, snapshotted as JSON by the /metrics endpoint. All methods
// are safe for concurrent use; metrics are created on first touch.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it at zero if absent.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero if absent.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending upper bounds if absent (bounds are ignored on later calls).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]int64, len(bounds)+1)}
		r.histograms[name] = h
	}
	return h
}

// Snapshot captures every metric as a JSON-marshalable value, in the
// expvar spirit: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
type Snapshot struct {
	// Counters holds each counter's current value by name.
	Counters map[string]int64 `json:"counters"`
	// Gauges holds each gauge's current value by name.
	Gauges map[string]int64 `json:"gauges"`
	// Histograms holds each histogram's bucket/sum/count state by name.
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot returns a point-in-time copy of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// MarshalJSON renders the live registry state (so a Registry can be
// exposed directly as an expvar-style endpoint).
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}
