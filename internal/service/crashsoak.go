package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"time"

	"eventorder/internal/journal"
	"eventorder/internal/vfs"
)

// Crash-restart soak: the durability acceptance harness. Where RunSoak
// proves the server degrades gracefully under load, RunCrashSoak proves
// it loses nothing under power failure: episodes of async traffic are cut
// short by a simulated crash (every unsynced byte discarded), the server
// reboots on the surviving image, and at the end every job that was ever
// acknowledged with a 202 must be terminal — with matrix verdicts
// identical to a clean, never-crashed run.

// CrashSoakOptions configures RunCrashSoak. Zero values select the
// documented defaults.
type CrashSoakOptions struct {
	// Episodes is the number of crash/restart cycles (default 3).
	Episodes int
	// JobsPerEpisode is how many async matrix jobs each episode submits
	// before the plug is pulled (default 6).
	JobsPerEpisode int
	// CrashAfter bounds the random delay between the last submission and
	// the crash (default 50ms) — small enough that jobs die in every
	// lifecycle phase across episodes.
	CrashAfter time.Duration
	// Seed seeds the workload/crash-timing randomness (default 1).
	Seed int64
	// Server configures the server under test; StateDir and StateFS are
	// owned by the harness and overwritten.
	Server Config
	// Programs is the workload corpus (required).
	Programs []SoakProgram
}

func (o *CrashSoakOptions) withDefaults() {
	if o.Episodes <= 0 {
		o.Episodes = 3
	}
	if o.JobsPerEpisode <= 0 {
		o.JobsPerEpisode = 6
	}
	if o.CrashAfter <= 0 {
		o.CrashAfter = 50 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// CrashSoakReport aggregates one RunCrashSoak's outcomes.
type CrashSoakReport struct {
	// Episodes is the number of crash/restart cycles performed.
	Episodes int
	// Accepted counts jobs acknowledged with 202 across all episodes —
	// the set the durability contract covers.
	Accepted int
	// Done and Failed partition the accepted set's final states after the
	// last recovery. A clean run has Failed == 0.
	Done   int
	Failed int
	// Verified counts done jobs whose matrix verdicts were checked
	// against the clean-run reference.
	Verified int
	// Recovered sums the jobs_recovered metric across reboots: how much
	// in-flight work the crashes actually interrupted.
	Recovered int64
	// ReplayRecords and CorruptFrames sum the journal replay metrics
	// across reboots. CorruptFrames counts torn tails — nonzero is the
	// crash harness working, not a bug.
	ReplayRecords int64
	CorruptFrames int64
	// FinalRecoveryMs is the wall time of the last boot's recovery: from
	// New returning to every recovered job being terminal.
	FinalRecoveryMs float64
	// Unexpected lists durability-contract violations (lost jobs, failed
	// jobs, verdicts differing from the clean run), capped at 20. A clean
	// crash soak has none.
	Unexpected []string
}

func (r *CrashSoakReport) unexpected(format string, args ...any) {
	if len(r.Unexpected) < 20 {
		r.Unexpected = append(r.Unexpected, fmt.Sprintf(format, args...))
	}
}

// soakVariant is one distinct submittable workload: a program crossed
// with a relation selector ("" = the full six-relation matrix). Distinct
// variants have distinct cache keys, so each is a real job the crashes
// can interrupt rather than a cache hit on an earlier completion.
type soakVariant struct {
	key     string // program name + relation, for the reference map
	program string // source text
	rel     string // single relation name, or "" for all
}

func crashSoakVariants(programs []SoakProgram) []soakVariant {
	rels := []string{"", "MHB", "CHB", "MCW", "CCW", "MOW", "COW"}
	var out []soakVariant
	for _, p := range programs {
		for _, rel := range rels {
			out = append(out, soakVariant{key: p.Name + "|" + rel, program: p.Source, rel: rel})
		}
	}
	return out
}

// RunCrashSoak runs the crash-restart soak on an in-memory filesystem.
// The error covers harness-level failures (boot, reference run); contract
// violations land in the report's Unexpected list.
func RunCrashSoak(ctx context.Context, opts CrashSoakOptions) (*CrashSoakReport, error) {
	opts.withDefaults()
	if len(opts.Programs) == 0 {
		return nil, fmt.Errorf("service: crash soak needs at least one workload program")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	rep := &CrashSoakReport{Episodes: opts.Episodes}
	variants := crashSoakVariants(opts.Programs)

	// Reference verdicts per variant from a clean, non-durable server.
	refCfg := opts.Server
	refCfg.StateDir, refCfg.StateFS = "", nil
	refRel, err := crashSoakReference(ctx, refCfg, variants)
	if err != nil {
		return nil, err
	}

	// jobs maps accepted job id → workload variant key, across episodes.
	jobs := map[string]string{}
	fs := vfs.NewMemFS()
	for ep := 0; ep < opts.Episodes; ep++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		cfg := opts.Server
		cfg.StateDir, cfg.StateFS = "/crashsoak", fs
		srv, err := New(cfg)
		if err != nil {
			return rep, fmt.Errorf("service: crash soak boot %d: %w", ep, err)
		}
		ts := httptest.NewServer(srv.Handler())
		client := &http.Client{Timeout: 10 * time.Second}

		// Submissions run concurrently with the crash timer, paced across
		// the crash window, so the plug pulls mid-traffic and jobs die in
		// every lifecycle phase: accepted-but-unqueued, queued, running,
		// and already done.
		type submission struct{ id, key string }
		subRng := rand.New(rand.NewSource(opts.Seed + int64(ep)*7919 + 1))
		pace := opts.CrashAfter / time.Duration(opts.JobsPerEpisode)
		stop := make(chan struct{})
		subCh := make(chan submission, opts.JobsPerEpisode)
		go func() {
			defer close(subCh)
			for i := 0; i < opts.JobsPerEpisode; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := variants[subRng.Intn(len(variants))]
				id, err := crashSoakSubmit(client, ts.URL, v)
				if err != nil {
					// 429/503 under a crash storm is admission control doing
					// its job — and a 200 is a legitimate cache hit on a
					// variant that already completed. Neither is a durability
					// violation.
					continue
				}
				subCh <- submission{id: id, key: v.key}
				time.Sleep(time.Duration(subRng.Int63n(int64(pace) + 1)))
			}
		}()

		time.Sleep(time.Duration(rng.Int63n(int64(opts.CrashAfter))))
		img := fs.Clone()
		img.Crash()
		close(stop)

		// Recovery metrics are read after the crash instant, not right
		// after New: the re-enqueue runs on a background goroutine, so the
		// counters only settle some time into the episode.
		rep.Recovered += srv.Metrics().Counter(MetricJobsRecovered).Value()
		rep.ReplayRecords += srv.Metrics().Counter(MetricJournalReplayRecords).Value()
		rep.CorruptFrames += srv.Metrics().Counter(MetricJournalCorruptFrames).Value()

		// The durability contract covers exactly the jobs whose "accepted"
		// record is in the surviving image. A 202 that raced the crash and
		// landed in the doomed FS generation was acknowledged after the
		// cut and is out of scope for this episode.
		covered, err := imageAcceptedIDs(img)
		if err != nil {
			return rep, fmt.Errorf("service: crash soak image scan %d: %w", ep, err)
		}
		for sub := range subCh {
			if covered[sub.id] {
				jobs[sub.id] = sub.key
				rep.Accepted++
			}
		}

		// Kill the old instance without draining: its post-crash writes go
		// to the doomed FS generation, not the surviving image.
		killCtx, cancel := context.WithCancel(context.Background())
		cancel()
		_ = srv.Shutdown(killCtx)
		ts.Close()
		fs = img
	}

	// Final boot: recovery must carry every surviving job to a terminal
	// state.
	cfg := opts.Server
	cfg.StateDir, cfg.StateFS = "/crashsoak", fs
	bootStart := time.Now()
	srv, err := New(cfg)
	if err != nil {
		return rep, fmt.Errorf("service: crash soak final boot: %w", err)
	}
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(dctx)
	}()

	deadline := time.Now().Add(2 * time.Minute)
	for id, variantKey := range jobs {
		sj, ok := srv.store.get(id)
		if !ok {
			// Eviction under MaxJobs pressure is the only legitimate way
			// an accepted job leaves the table.
			if len(jobs) <= srv.cfg.MaxJobs {
				rep.unexpected("accepted job %s lost after recovery", id)
			}
			continue
		}
		var state JobState
		var body []byte
		var errs string
		for {
			state, body, errs, _ = sj.snapshot()
			if state == JobDone || state == JobFailed {
				break
			}
			if time.Now().After(deadline) || ctx.Err() != nil {
				rep.unexpected("job %s stuck in %s after recovery", id, state)
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		switch state {
		case JobDone:
			rep.Done++
			var m MatrixResult
			if err := json.Unmarshal(body, &m); err != nil {
				rep.unexpected("job %s: unparseable recovered body: %v", id, err)
				continue
			}
			if !m.Complete {
				rep.unexpected("job %s: incomplete after recovery (cause %q)", id, m.Cause)
				continue
			}
			want, ok := refRel[variantKey]
			if !ok {
				continue
			}
			got, _ := json.Marshal(m.Relations)
			if string(got) != want {
				rep.unexpected("job %s (%s): verdicts differ from clean run", id, variantKey)
			} else {
				rep.Verified++
			}
		case JobFailed:
			rep.Failed++
			rep.unexpected("job %s failed after recovery: %s", id, errs)
		}
	}
	rep.FinalRecoveryMs = ms(time.Since(bootStart))
	// Every job is terminal here, so the background re-enqueue has settled
	// and the final boot's recovery counters are stable.
	rep.Recovered += srv.Metrics().Counter(MetricJobsRecovered).Value()
	rep.ReplayRecords += srv.Metrics().Counter(MetricJournalReplayRecords).Value()
	rep.CorruptFrames += srv.Metrics().Counter(MetricJournalCorruptFrames).Value()
	return rep, nil
}

// imageAcceptedIDs scans a crashed filesystem image's journal and
// returns the job ids whose "accepted" record survived the cut — the set
// the durability contract covers for that image.
func imageAcceptedIDs(img vfs.FS) (map[string]bool, error) {
	rep, err := journal.Scan(img, vfs.Join("/crashsoak", "journal"))
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, raw := range rep.Records {
		var rec jobRecord
		if json.Unmarshal(raw, &rec) == nil && rec.T == "accepted" {
			out[rec.ID] = true
		}
	}
	return out, nil
}

// crashSoakReference computes each variant's complete matrix verdicts on
// a clean in-memory server, as canonical JSON.
func crashSoakReference(ctx context.Context, cfg Config, variants []soakVariant) (map[string]string, error) {
	srv, err := New(cfg)
	if err != nil {
		return nil, err
	}
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(dctx)
	}()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Timeout: 60 * time.Second}
	out := map[string]string{}
	for _, v := range variants {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		body, err := json.Marshal(crashSoakBody(v, false))
		if err != nil {
			return nil, err
		}
		resp, err := client.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("service: crash soak reference %s: %w", v.key, err)
		}
		var env Envelope
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("service: crash soak reference %s: status %d", v.key, resp.StatusCode)
		}
		var m MatrixResult
		if err := json.Unmarshal(env.Result, &m); err != nil || !m.Complete {
			return nil, fmt.Errorf("service: crash soak reference %s: incomplete", v.key)
		}
		rel, err := json.Marshal(m.Relations)
		if err != nil {
			return nil, err
		}
		out[v.key] = string(rel)
	}
	return out, nil
}

// crashSoakBody builds the analyze request for a variant.
func crashSoakBody(v soakVariant, async bool) map[string]any {
	body := map[string]any{"program": v.program, "async": async}
	if v.rel == "" {
		body["all"] = true
	} else {
		body["rel"] = v.rel
	}
	return body
}

// crashSoakSubmit posts one async matrix job and returns the job id.
func crashSoakSubmit(client *http.Client, base string, v soakVariant) (string, error) {
	body, err := json.Marshal(crashSoakBody(v, true))
	if err != nil {
		return "", err
	}
	resp, err := client.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("service: async submit: status %d", resp.StatusCode)
	}
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return "", err
	}
	return jr.ID, nil
}
