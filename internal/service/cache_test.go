package service

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"eventorder/internal/gen"
)

func testCache(budget int64) (*resultCache, *Registry) {
	m := NewRegistry()
	return newResultCache(budget, m), m
}

func TestCacheHitMissCounting(t *testing.T) {
	c, m := testCache(1 << 20)
	if _, ok := c.get("k1"); ok {
		t.Fatal("hit on empty cache")
	}
	c.put("k1", []byte("body"))
	got, ok := c.get("k1")
	if !ok || string(got) != "body" {
		t.Fatalf("get after put = %q, %v", got, ok)
	}
	if h, mi := m.Counter(MetricCacheHits).Value(), m.Counter(MetricCacheMisses).Value(); h != 1 || mi != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", h, mi)
	}
}

func TestCacheEvictsLRUUnderByteBudget(t *testing.T) {
	// Each entry costs len(key)+len(body) = 2+8 = 10 bytes; budget fits 3.
	c, m := testCache(30)
	body := bytes.Repeat([]byte("x"), 8)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), body)
	}
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3", c.len())
	}
	// Touch k0 so k1 becomes least recently used, then overflow.
	c.get("k0")
	c.put("k3", body)
	if _, ok := c.get("k1"); ok {
		t.Error("k1 survived eviction despite being LRU")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s evicted, want kept", k)
		}
	}
	if n := m.Counter(MetricCacheEvictions).Value(); n != 1 {
		t.Errorf("evictions = %d, want 1", n)
	}
	if b := m.Gauge(MetricCacheBytes).Value(); b != 30 {
		t.Errorf("cache_bytes gauge = %d, want 30", b)
	}
	if n := m.Gauge(MetricCacheEntries).Value(); n != 3 {
		t.Errorf("cache_entries gauge = %d, want 3", n)
	}
}

func TestCacheSkipsOversizedBodies(t *testing.T) {
	c, _ := testCache(16)
	c.put("big", bytes.Repeat([]byte("x"), 64))
	if c.len() != 0 {
		t.Errorf("oversized body cached (len=%d)", c.len())
	}
}

func TestCachePutIdempotent(t *testing.T) {
	c, _ := testCache(1 << 10)
	c.put("k", []byte("v"))
	c.put("k", []byte("v"))
	if c.len() != 1 {
		t.Errorf("duplicate put grew the cache to %d entries", c.len())
	}
}

// TestExecutionDigestIsContentAddressed: structurally identical executions
// hash equal; a different execution hashes different.
func TestExecutionDigestIsContentAddressed(t *testing.T) {
	a, err := gen.Mutex(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.Mutex(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	other, err := gen.Mutex(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	da, err := executionDigest(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := executionDigest(b)
	if err != nil {
		t.Fatal(err)
	}
	do, err := executionDigest(other)
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Errorf("identical executions digest differently: %s vs %s", da, db)
	}
	if da == do {
		t.Error("distinct executions share a digest")
	}
	if k1, k2 := cacheKey(da, "analyze"), cacheKey(da, "races"); k1 == k2 {
		t.Error("distinct descriptors share a cache key")
	}
}

func TestHistogramSnapshotCumulative(t *testing.T) {
	m := NewRegistry()
	h := m.Histogram("t", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	s := m.Snapshot().Histograms["t"]
	if s.Count != 5 || s.Sum != 56.05 {
		t.Errorf("count=%d sum=%g, want 5/56.05", s.Count, s.Sum)
	}
	want := map[string]int64{"le_0.1": 1, "le_1": 3, "le_10": 4, "le_inf": 5}
	for k, v := range want {
		if s.Buckets[k] != v {
			t.Errorf("bucket %s = %d, want %d", k, s.Buckets[k], v)
		}
	}
}

func TestRegistryMarshalJSON(t *testing.T) {
	m := NewRegistry()
	m.Counter("c").Add(2)
	m.Gauge("g").Set(-1)
	b, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"c":2`, `"g":-1`} {
		if !strings.Contains(string(b), frag) {
			t.Errorf("marshaled registry missing %s: %s", frag, b)
		}
	}
}
