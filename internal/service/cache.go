package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"eventorder/internal/model"
	"eventorder/internal/traceio"
)

// resultCache is a byte-budgeted LRU over marshaled analysis results,
// keyed by a content hash of the execution plus the query descriptor. Two
// requests that submit the same execution (whether as a program that runs
// to the same trace, or as the serialized trace itself) with the same
// query options share one entry; the exponential search runs once.
type resultCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions *Counter
	bytes, count            *Gauge
}

type cacheEntry struct {
	key  string
	body []byte
}

func newResultCache(budget int64, m *Registry) *resultCache {
	return &resultCache{
		budget:    budget,
		order:     list.New(),
		entries:   map[string]*list.Element{},
		hits:      m.Counter(MetricCacheHits),
		misses:    m.Counter(MetricCacheMisses),
		evictions: m.Counter(MetricCacheEvictions),
		bytes:     m.Gauge(MetricCacheBytes),
		count:     m.Gauge(MetricCacheEntries),
	}
}

// get returns the cached body for key, marking it most recently used.
// Counts a hit or miss.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).body, true
}

// put inserts body under key, evicting least-recently-used entries until
// the byte budget holds. Bodies larger than the whole budget are not
// cached. put is idempotent for an existing key.
func (c *resultCache) put(key string, body []byte) {
	size := int64(len(body)) + int64(len(key))
	if size > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	for c.used+size > c.budget {
		back := c.order.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.entries, ev.key)
		c.used -= int64(len(ev.body)) + int64(len(ev.key))
		c.evictions.Add(1)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	c.used += size
	c.bytes.Set(c.used)
	c.count.Set(int64(len(c.entries)))
	return
}

// len reports the number of cached entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// executionDigest hashes an execution's canonical serialization (the
// traceio wire form is deterministic: dense ids, sorted semaphore and
// event-variable names). The digest is the content address the cache and
// job ids build on.
func executionDigest(x *model.Execution) (string, error) {
	h := sha256.New()
	if err := traceio.SaveExecution(h, x); err != nil {
		return "", fmt.Errorf("service: hashing execution: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// cacheKey combines the execution digest with the canonical query
// descriptor. Options that change answers (relation, pair, ignoreData)
// are part of the key; options that only bound effort (deadline, node
// budget) are not — a successful result is valid for every budget.
func cacheKey(digest, descriptor string) string {
	sum := sha256.Sum256([]byte(digest + "\x00" + descriptor))
	return hex.EncodeToString(sum[:])
}
