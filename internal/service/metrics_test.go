package service

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// TestLogBuckets pins the geometric bucket generator: the bounds the
// queue-wait and node-count histograms are built from must start where
// asked, grow by exactly the factor, and stay strictly ascending (a
// histogram with unsorted bounds would silently misclassify samples).
func TestLogBuckets(t *testing.T) {
	b := LogBuckets(10e-6, 4, 13)
	if len(b) != 13 {
		t.Fatalf("len = %d, want 13", len(b))
	}
	if math.Abs(b[0]-10e-6) > 1e-12 {
		t.Errorf("first bound = %g, want 10e-6", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %g <= %g", i, b[i], b[i-1])
		}
		if r := b[i] / b[i-1]; math.Abs(r-4) > 1e-9 {
			t.Errorf("ratio at %d = %g, want 4", i, r)
		}
	}
	// The top bound must comfortably cover the longest plausible queue
	// wait (the soak's storm deadlines are tens of seconds at worst).
	if top := b[len(b)-1]; top < 60 {
		t.Errorf("top queue-wait bound %gs cannot hold a minute-long wait", top)
	}
}

// TestHistogramBuckets drives known samples through a small histogram and
// checks the cumulative bucket counts, sum, and count land exactly.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 50, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 5 || s.Sum != 1053.5 {
		t.Fatalf("count=%d sum=%g, want 5 / 1053.5", s.Count, s.Sum)
	}
	// 0.5 and 1 fall at or below the le_1 bound; 2 below 10; 50 below
	// 100; 1000 overflows.
	want := []int64{2, 3, 4, 5}
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, s.Cumulative[i], w)
		}
	}
	if s.Buckets["le_1"] != 2 || s.Buckets["le_inf"] != 5 {
		t.Errorf("bucket map wrong: %v", s.Buckets)
	}
}

// TestHistogramQuantile checks the interpolation the soak report's
// p50/p99 numbers come from, including the empty and overflow edges.
func TestHistogramQuantile(t *testing.T) {
	empty := HistogramSnapshot{}
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %g, want 0", q)
	}

	r := NewRegistry()
	h := r.Histogram("t", []float64{10, 20, 30})
	// 10 samples uniformly in (0,10]: the median rank (5) lands halfway
	// into the first bucket.
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	if q := h.snapshot().Quantile(0.5); math.Abs(q-5) > 1e-9 {
		t.Errorf("p50 = %g, want 5 (half of the first bucket)", q)
	}

	// All samples in the overflow bucket: the estimate clamps to the top
	// finite bound rather than inventing numbers past it.
	h2 := r.Histogram("t2", []float64{10, 20})
	h2.Observe(1e6)
	if q := h2.snapshot().Quantile(0.99); q != 20 {
		t.Errorf("overflow p99 = %g, want the top bound 20", q)
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// creating, incrementing, observing, and snapshotting simultaneously —
// under -race. The assertions at the end verify no observation was lost.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("hits").Add(1)
				r.Gauge("depth").Add(1)
				r.Histogram("wait", []float64{0.001, 0.01, 0.1, 1}).Observe(float64(i%100) / 100)
				r.Gauge("depth").Add(-1)
				if i%100 == 0 {
					// Concurrent snapshots must see internally consistent
					// histograms: cumulative counts ascending, count equal
					// to the overflow entry.
					s := r.Snapshot()
					if h, ok := s.Histograms["wait"]; ok {
						for j := 1; j < len(h.Cumulative); j++ {
							if h.Cumulative[j] < h.Cumulative[j-1] {
								t.Errorf("snapshot cumulative not monotone: %v", h.Cumulative)
								return
							}
						}
						if h.Cumulative[len(h.Cumulative)-1] != h.Count {
							t.Errorf("snapshot count %d != last cumulative %d", h.Count, h.Cumulative[len(h.Cumulative)-1])
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n := r.Counter("hits").Value(); n != workers*perWorker {
		t.Errorf("counter = %d, want %d", n, workers*perWorker)
	}
	if n := r.Gauge("depth").Value(); n != 0 {
		t.Errorf("gauge = %d, want 0", n)
	}
	s := r.Snapshot()
	if h := s.Histograms["wait"]; h.Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*perWorker)
	}
}

// TestRegistryMarshalWireShape checks the /metrics wire shape: the
// registry marshals to the three top-level sections with the histogram
// detail the operations docs promise.
func TestRegistryMarshalWireShape(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricJobsShed).Add(3)
	r.Gauge(MetricShedMode).Set(1)
	r.Histogram(MetricQueueWait+"_"+LaneFast, queueWaitBounds).Observe(0.005)
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters[MetricJobsShed] != 3 || s.Gauges[MetricShedMode] != 1 {
		t.Errorf("roundtrip lost values: %+v", s)
	}
	h, ok := s.Histograms[MetricQueueWait+"_"+LaneFast]
	if !ok || h.Count != 1 || len(h.Bounds) != len(queueWaitBounds) {
		t.Errorf("histogram roundtrip wrong: %+v", h)
	}
}
