// Package service implements eventorderd, a resident HTTP/JSON analysis
// server over the exact event-ordering engine. The paper proves every
// relation query (co-)NP-hard, which makes the workload long-running,
// cache-friendly, and deadline-sensitive — exactly the shape a one-shot
// CLI serves worst. The server amortizes that cost three ways:
//
//   - a bounded worker-pool job scheduler (N workers, each running jobs on
//     private core.Analyzer instances, mirroring the S22 parallel path);
//   - a content-addressed result cache (LRU with a byte budget) keyed by a
//     canonical hash of the execution plus the query options, so repeated
//     queries — the common case for interactive debugging — skip the
//     exponential search entirely;
//   - per-request deadlines threaded as context.Context into the core
//     search loops, so an abandoned request stops burning CPU — and, for
//     matrix queries, an anytime contract: a deadline or budget that
//     strikes mid-analysis yields 200 with "complete": false, every
//     verdict decided so far, and a checkpoint the client resumes via the
//     request's resume field (partial results never enter the cache).
//
// Endpoints: POST /v1/analyze (single pair or full relation matrices),
// POST /v1/races, POST /v1/witness, GET /v1/jobs/{id} (async polling),
// GET /healthz, GET /metrics (expvar-style JSON registry).
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eventorder/internal/core"
	"eventorder/internal/interp"
	"eventorder/internal/journal"
	"eventorder/internal/lang"
	"eventorder/internal/model"
	"eventorder/internal/plan"
	"eventorder/internal/race"
	blobstore "eventorder/internal/store"
	"eventorder/internal/traceio"
	"eventorder/internal/vfs"
)

// Config tunes a Server. Zero values select the documented defaults.
type Config struct {
	// Workers is the number of analysis worker goroutines (default
	// GOMAXPROCS). The worker pool bounds concurrent searches: each job
	// builds its own core.Analyzer (the engine is single-threaded), so
	// Workers is also the peak number of live analyzers.
	Workers int
	// QueueDepth bounds jobs admitted but not yet running (default 64).
	// Submissions beyond it are rejected with 429 + Retry-After rather
	// than queued without bound — load-shedding for a server of
	// exponential queries.
	QueueDepth int
	// FastWorkers is the cheap-request fast lane's pool size (default 1;
	// ignored when DisableFastLane). Requests the polynomial planner
	// fully decides never touch the exponential engine, so routing them
	// around the heavy pool keeps their latency flat no matter how many
	// NP-hard queries are queued — the paper's hardness cliff is exactly
	// why one FIFO for both classes has unbounded cheap-request p99.
	FastWorkers int
	// FastQueueDepth bounds the fast lane's accept queue (default
	// QueueDepth).
	FastQueueDepth int
	// DisableFastLane routes every request through the heavy pool (the
	// comparison/debugging escape hatch; cmd/bench -soak uses it for the
	// with/without-lane experiment).
	DisableFastLane bool
	// ShedDepth is the heavy-queue occupancy at which load shedding
	// engages (default 3/4 of QueueDepth, minimum 1): while the heavy
	// queue holds at least this many jobs, anytime (matrix) requests get
	// their deadline clamped to ShedTimeout, so they answer quickly with
	// a partial result and a resumable checkpoint instead of deepening
	// the backlog. Set it above QueueDepth to disable shedding.
	ShedDepth int
	// ShedTimeout is the clamped deadline shed mode applies (default
	// 200ms).
	ShedTimeout time.Duration
	// PartialGrace is how long a synchronous handler waits past the
	// request deadline for an interrupted anytime analysis to surface its
	// partial result (default 2s). The search aborts at its next
	// cancellation poll, so the wait is normally microseconds once the
	// job runs; the grace must cover the residual queue wait of a job
	// whose deadline struck while still queued — size it above
	// QueueDepth × ShedTimeout if storms of tiny-deadline requests are
	// expected.
	PartialGrace time.Duration
	// CacheBytes is the result cache budget in bytes (default 32 MiB).
	CacheBytes int64
	// DefaultTimeout applies to requests that set no timeoutMs
	// (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (default 5m).
	MaxTimeout time.Duration
	// MaxNodes is the default per-query search node budget when a request
	// sets none; 0 means unbounded.
	MaxNodes int64
	// MaxMatrixWorkers caps the per-request workers knob of matrix
	// queries (default GOMAXPROCS). Requests asking for more are clamped,
	// not rejected: the knob is a resource hint, not a semantic one —
	// matrix verdicts are identical at every worker count.
	MaxMatrixWorkers int
	// MaxBudget caps client-requested search budgets (0 = no cap).
	// Requests exceeding it are clamped to it.
	MaxBudget int64
	// DisablePOR turns off sleep-set partial-order reduction in every
	// analysis this server runs. Verdicts, witnesses, and matrices are
	// identical either way; the knob exists for comparison and debugging.
	DisablePOR bool
	// DisableSymm turns off process-symmetry orbit collapsing in every
	// analysis this server runs. Verdicts, witnesses, and matrices are
	// identical either way; the knob exists for comparison and debugging.
	// It contributes to the matrix result-cache key, since symmetric and
	// non-symmetric runs take different checkpoint shapes.
	DisableSymm bool
	// DisablePlan turns off the tiered polynomial planner for matrix
	// queries: every request runs exact-only, as if it asked for
	// tiers=-1. Verdicts are identical either way (the planner is a
	// work-avoidance bracket, not an approximation); the knob exists for
	// comparison and debugging.
	DisablePlan bool
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxJobs bounds retained async jobs for polling (default 1024).
	MaxJobs int
	// StateDir enables crash-safe durability: async-job lifecycle records
	// go to a write-ahead journal under <StateDir>/journal, result bodies
	// and drain checkpoints to a blob store under <StateDir>/blobs, and
	// startup replays the journal — rehydrating finished jobs and the
	// result cache, and re-enqueueing unfinished jobs from their latest
	// checkpoint. Empty (the default) keeps all state in memory.
	StateDir string
	// StateFS overrides the filesystem the durability layer writes
	// through (tests inject a crash-simulating in-memory FS; nil means
	// the real filesystem).
	StateFS vfs.FS
	// DrainCheckpoint is how long Shutdown lets in-flight anytime jobs
	// keep running before canceling them so they surface resumable
	// partial results (journaled as "checkpointed" and resumed on the
	// next boot). Default 1s; negative disables the cancellation (drain
	// waits for natural completion, as before durability).
	DrainCheckpoint time.Duration
	// JournalSegmentBytes overrides the journal's segment rotation
	// threshold (default 4 MiB; tests shrink it to force rotation).
	JournalSegmentBytes int64
	// Logger receives structured request logs (default: JSON to stderr).
	Logger *slog.Logger
}

func (c *Config) withDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.FastWorkers <= 0 {
		c.FastWorkers = 1
	}
	if c.FastQueueDepth <= 0 {
		c.FastQueueDepth = c.QueueDepth
	}
	if c.ShedDepth <= 0 {
		c.ShedDepth = max(1, c.QueueDepth*3/4)
	}
	if c.ShedTimeout <= 0 {
		c.ShedTimeout = 200 * time.Millisecond
	}
	if c.PartialGrace <= 0 {
		c.PartialGrace = 2 * time.Second
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 32 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.DrainCheckpoint == 0 {
		c.DrainCheckpoint = time.Second
	}
	if c.MaxMatrixWorkers <= 0 {
		c.MaxMatrixWorkers = runtime.GOMAXPROCS(0)
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
}

// Server is the eventorderd analysis service. Create with New, mount
// Handler on an http.Server, and call Shutdown to drain.
type Server struct {
	cfg     Config
	log     *slog.Logger
	mux     *http.ServeMux
	metrics *Registry
	cache   *resultCache
	store   *jobStore

	jobs        chan *job
	fastJobs    chan *job
	queueDepth  *Gauge
	jobsRunning *Gauge
	workerWG    sync.WaitGroup

	shutdownMu sync.Mutex
	closed     bool

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// Durability (nil / inert without Config.StateDir; see durability.go).
	jrnl             *journal.Journal
	blobs            *blobstore.Store
	recoveryWG       sync.WaitGroup
	closeJournalOnce sync.Once
	// draining flips when Shutdown begins; asyncOnDone uses it to tell a
	// drain-clipped partial (journal "checkpointed", resume next boot)
	// from a client-requested one (terminal).
	draining atomic.Bool
	// drainCtx cancels in-flight anytime jobs once Shutdown's checkpoint
	// grace (Config.DrainCheckpoint) expires.
	drainCtx    context.Context
	drainCancel context.CancelFunc
}

// New builds a Server and starts its worker pool. With Config.StateDir
// set it also replays the write-ahead journal — restoring finished async
// jobs, re-enqueueing unfinished ones from their latest checkpoint, and
// rehydrating the result cache; the error return is reserved for a state
// directory that cannot be opened or replayed.
func New(cfg Config) (*Server, error) {
	cfg.withDefaults()
	m := NewRegistry()
	s := &Server{
		cfg:         cfg,
		log:         cfg.Logger,
		mux:         http.NewServeMux(),
		metrics:     m,
		cache:       newResultCache(cfg.CacheBytes, m),
		store:       newJobStore(cfg.MaxJobs),
		jobs:        make(chan *job, cfg.QueueDepth),
		fastJobs:    make(chan *job, cfg.FastQueueDepth),
		queueDepth:  m.Gauge(MetricQueueDepth),
		jobsRunning: m.Gauge(MetricJobsRunning),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background())
	s.preregisterMetrics()
	s.mux.HandleFunc("POST /v1/analyze", s.instrument("analyze", s.handleAnalyze))
	s.mux.HandleFunc("POST /v1/races", s.instrument("races", s.handleRaces))
	s.mux.HandleFunc("POST /v1/witness", s.instrument("witness", s.handleWitness))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("jobs", s.handleJobGet))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker(s.jobs)
	}
	fastWorkers := cfg.FastWorkers
	if cfg.DisableFastLane {
		fastWorkers = 0
	}
	for i := 0; i < fastWorkers; i++ {
		s.workerWG.Add(1)
		go s.worker(s.fastJobs)
	}
	// After the workers: recovery re-enqueues journaled jobs into the
	// live queues.
	if err := s.initDurability(); err != nil {
		s.baseCancel()
		s.drainCancel()
		_ = s.Shutdown(context.Background())
		return nil, err
	}
	return s, nil
}

// preregisterMetrics touches every metric name the server can emit so
// /metrics exposes the full inventory from the first scrape. Dashboards
// and the schema golden test depend on the name set being a property of
// the build, not of which code paths happened to run.
func (s *Server) preregisterMetrics() {
	for _, name := range []string{
		MetricCacheHits, MetricCacheMisses, MetricCacheEvictions,
		MetricJobsRejected, MetricJobsCompleted, MetricJobsDeadline,
		MetricJobsThrottled, MetricJobsShed, MetricJobsFastLane,
		MetricMemoGrows, MetricAnalyzePartial, MetricAnalyzeResumed,
		MetricSymmCollapses,
		MetricJournalReplayRecords, MetricJournalCorruptFrames,
		MetricJournalRecords, MetricJobsRecovered,
		MetricJobsDrainCheckpointed, MetricStoreRehydrated,
	} {
		s.metrics.Counter(name)
	}
	for t := plan.TierStatic; t <= plan.TierExact; t++ {
		s.metrics.Counter(MetricPlanPairs + "_" + t.String())
	}
	for _, name := range []string{
		MetricQueueDepth, MetricJobsRunning, MetricCacheBytes,
		MetricCacheEntries, MetricMemoEntries, MetricMemoBytes,
		MetricMemoLoadPermille, MetricSymmClasses, MetricShedMode,
		MetricJournalSegments,
	} {
		s.metrics.Gauge(name)
	}
	for _, endpoint := range []string{"analyze", "races", "witness", "jobs", "healthz", "metrics"} {
		s.metrics.Counter(MetricRequests + "_" + endpoint)
		s.metrics.Histogram(MetricLatency+"_"+endpoint, latencyBounds)
	}
	for _, lane := range []string{LaneFast, LaneHeavy} {
		s.metrics.Histogram(MetricQueueWait+"_"+lane, queueWaitBounds)
	}
	s.metrics.Histogram(MetricExploredNodes, nodeBounds)
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's metrics registry (for embedding and tests).
func (s *Server) Metrics() *Registry { return s.metrics }

// Shutdown drains the server: new submissions are rejected with 503,
// queued and running jobs finish, then workers exit. After
// Config.DrainCheckpoint, still-running anytime jobs are canceled so
// they surface resumable partial results instead of holding the drain
// open — with a state dir those partials are journaled as "checkpointed"
// and the next boot resumes them, so drain throws away no search work.
// If ctx expires first, all running jobs are force-canceled (their
// searches abort at the next cancellation poll) and Shutdown returns
// ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.shutdownMu.Lock()
	if !s.closed {
		s.closed = true
		// Safe: submissions only send while holding shutdownMu with
		// closed=false.
		close(s.jobs)
		close(s.fastJobs)
	}
	s.shutdownMu.Unlock()
	var drainTimer *time.Timer
	if s.cfg.DrainCheckpoint > 0 {
		drainTimer = time.AfterFunc(s.cfg.DrainCheckpoint, s.drainCancel)
	}
	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	defer func() {
		if drainTimer != nil {
			drainTimer.Stop()
		}
		s.finishDurability()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Wire types ----------------------------------------------------------------

// SchemaVersion is the wire schema generation stamped on every /v1
// response envelope. Version 2 introduced the anytime analysis surface:
// three-valued verdicts as string enums, partial matrix results with
// "complete": false served as 200 instead of 504, resumable checkpoints,
// and job progress on GET /v1/jobs/{id}.
const SchemaVersion = 2

// Verdict is the three-valued relation answer carried by v2 responses,
// JSON-encoded as "true", "false", or "unknown".
type Verdict = core.Verdict

// Verdict values.
const (
	VerdictUnknown = core.VerdictUnknown
	VerdictFalse   = core.VerdictFalse
	VerdictTrue    = core.VerdictTrue
)

// ExecutionSource selects the execution under analysis: either a
// mini-language program to run into a trace, or a serialized trace in the
// traceio wire format.
type ExecutionSource struct {
	// Program is mini-language source; the server runs it (deadlock-
	// avoiding, seeded) and analyzes the recorded execution.
	Program string `json:"program,omitempty"`
	// Execution is a trace in the traceio JSON format, as produced by
	// `eventorder run` or a previous server response.
	Execution json.RawMessage `json:"execution,omitempty"`
	// Seed seeds the program scheduler (default 1). Ignored with
	// Execution.
	Seed int64 `json:"seed,omitempty"`
	// Tries bounds deadlock-avoiding rescheduling attempts (default 64).
	Tries int `json:"tries,omitempty"`
}

// AnalyzeRequest is the body of POST /v1/analyze.
type AnalyzeRequest struct {
	ExecutionSource
	// Rel names the relation (MHB CHB MCW CCW MOW COW, case-insensitive).
	// With A and B it selects a single pair query; with All (or alone) a
	// full matrix. Empty Rel with All computes all six matrices.
	Rel string `json:"rel,omitempty"`
	// A and B are event labels for a single pair query.
	A string `json:"a,omitempty"`
	B string `json:"b,omitempty"`
	// All requests full relation matrices.
	All bool `json:"all,omitempty"`
	// IgnoreData drops the shared-data-dependence constraints (the
	// Section 5.3 feasibility notion).
	IgnoreData bool `json:"ignoreData,omitempty"`
	// Budget bounds search nodes per query (0 = server default; capped by
	// the server's maximum). For matrix queries it bounds the batch
	// engine's total distinct states expanded.
	Budget int64 `json:"budget,omitempty"`
	// Workers is the matrix-query fan-out width (0 = server default;
	// capped by the server's maximum; ignored for pair queries). Verdicts
	// do not depend on it, so cached results are shared across widths.
	Workers int `json:"workers,omitempty"`
	// Tiers caps the planner cascade for matrix queries: 0 (default)
	// runs every polynomial tier, 1..3 run only the first so many, and
	// -1 disables the planner (exact-only, no bracket). Ignored for pair
	// queries; forced to -1 when the server was started with planning
	// disabled. Verdicts do not depend on it — only the work split and
	// the plan summary do.
	Tiers int `json:"tiers,omitempty"`
	// TimeoutMs is the request deadline in milliseconds (0 = server
	// default; capped by the server's maximum). A matrix query whose
	// deadline strikes mid-analysis answers 200 with "complete": false
	// and every verdict decided so far, plus a resumable checkpoint.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// Async submits the work as a pollable job: the response carries a
	// job id for GET /v1/jobs/{id} instead of the result.
	Async bool `json:"async,omitempty"`
	// Resume continues an interrupted matrix analysis from the
	// checkpoint a previous partial response carried (the base64 string
	// under "checkpoint"). The execution and ignoreData setting must
	// match the original request; budget is charged cumulatively across
	// attempts, so resubmitting with a larger budget continues rather
	// than restarts. Only meaningful for matrix queries; resumed
	// requests bypass the result cache in both directions. A malformed
	// or mismatched checkpoint is rejected with 422.
	Resume string `json:"resume,omitempty"`
}

// RacesRequest is the body of POST /v1/races.
type RacesRequest struct {
	ExecutionSource
	// IgnoreData, Budget, TimeoutMs, Async: as in AnalyzeRequest.
	IgnoreData bool  `json:"ignoreData,omitempty"`
	Budget     int64 `json:"budget,omitempty"`
	TimeoutMs  int64 `json:"timeoutMs,omitempty"`
	Async      bool  `json:"async,omitempty"`
}

// WitnessRequest is the body of POST /v1/witness.
type WitnessRequest struct {
	ExecutionSource
	// Rel, A, B name the relation and event pair to demonstrate.
	Rel string `json:"rel"`
	A   string `json:"a"`
	B   string `json:"b"`
	// IgnoreData, Budget, TimeoutMs, Async: as in AnalyzeRequest.
	IgnoreData bool  `json:"ignoreData,omitempty"`
	Budget     int64 `json:"budget,omitempty"`
	TimeoutMs  int64 `json:"timeoutMs,omitempty"`
	Async      bool  `json:"async,omitempty"`
}

// Envelope wraps every synchronous analysis response.
type Envelope struct {
	// SchemaVersion stamps the wire schema generation (currently 2).
	SchemaVersion int `json:"schemaVersion"`
	// RequestID is the server-minted request ID (also in the X-Request-Id
	// header); the server's structured log lines for this request carry
	// the same value under "rid".
	RequestID string `json:"requestId"`
	// Cached reports whether the result was served from the result cache
	// (no search ran for this request).
	Cached bool `json:"cached"`
	// ElapsedMs is wall time spent serving this request.
	ElapsedMs float64 `json:"elapsedMs"`
	// Trace carries the request's lane, queue wait, and span timings.
	Trace *TraceInfo `json:"trace,omitempty"`
	// Result is the endpoint-specific payload (PairResult, MatrixResult,
	// RacesResult, or WitnessResult).
	Result json.RawMessage `json:"result"`
}

// PairResult answers a single-pair relation query.
type PairResult struct {
	// Rel, A, B echo the canonicalized query.
	Rel string `json:"rel"`
	A   string `json:"a"`
	B   string `json:"b"`
	// Verdict is the three-valued answer ("true" or "false" here — a
	// pair query either finishes or errors, so "unknown" never appears).
	Verdict Verdict `json:"verdict"`
	// Nodes is the search effort spent.
	Nodes int64 `json:"nodes"`
}

// MatrixResult answers a full-matrix query, completely or partially.
type MatrixResult struct {
	// Events names every event, indexed by event id.
	Events []string `json:"events"`
	// Complete reports whether every requested verdict is decided. A
	// partial result (deadline, cancellation, or budget exhaustion mid-
	// analysis) carries everything decided so far — sound: a partial
	// verdict never contradicts the completed analysis — plus a
	// checkpoint to resume from.
	Complete bool `json:"complete"`
	// Relations maps relation name to the pairs PROVEN to satisfy it
	// (event id pairs). On a complete result absence means proven false;
	// on a partial one consult Undecided to tell proven-false from open.
	Relations map[string][][2]int `json:"relations"`
	// Undecided maps relation name to the pairs the interrupted analysis
	// left open. Omitted when Complete.
	Undecided map[string][][2]int `json:"undecided,omitempty"`
	// DecidedPairs counts ordered event pairs whose every requested
	// verdict is decided; TotalPairs is n·(n−1).
	DecidedPairs int `json:"decidedPairs"`
	TotalPairs   int `json:"totalPairs"`
	// Checkpoint resumes the interrupted analysis: POST /v1/analyze the
	// same execution with "resume" set to this string (and, typically, a
	// larger budget or timeout). Omitted when Complete.
	Checkpoint *core.Checkpoint `json:"checkpoint,omitempty"`
	// Cause names why a partial analysis stopped ("deadline", "budget",
	// or "canceled"). Omitted when Complete.
	Cause string `json:"cause,omitempty"`
	// Expanded is the cumulative number of states the batch exploration
	// charged against its budget, including resumed-from attempts.
	Expanded int64 `json:"expanded"`
	// Nodes is the total search effort spent.
	Nodes int64 `json:"nodes"`
	// Plan summarizes the tiered planner's bracket for this query
	// (omitted on resumed runs — the seed travels in the checkpoint).
	Plan *PlanSummary `json:"plan,omitempty"`
}

// PlanTier is one polynomial tier's row in a PlanSummary.
type PlanTier struct {
	// Tier names the tier ("static", "observed", "dag").
	Tier string `json:"tier"`
	// PairsDecided counts event pairs whose every requested verdict
	// first became derivable at this tier.
	PairsDecided int `json:"pairsDecided"`
	// FactsDecided counts primitive interval facts the tier newly
	// proved or refuted.
	FactsDecided int `json:"factsDecided"`
	// EventsScanned, Rounds, OrderedPairs report the tier's effort and
	// the size of its underlying polynomial relation.
	EventsScanned int `json:"eventsScanned"`
	Rounds        int `json:"rounds"`
	OrderedPairs  int `json:"orderedPairs"`
}

// PlanSummary reports how the polynomial pre-solver cascade bracketed a
// matrix query before the exact engine ran.
type PlanSummary struct {
	// TotalPairs is the number of ordered event pairs, n·(n−1).
	TotalPairs int `json:"totalPairs"`
	// ResiduePairs is how many pairs were left to the exact engine.
	ResiduePairs int `json:"residuePairs"`
	// Tiers holds one row per executed polynomial tier, in cascade
	// order (empty when the planner was disabled).
	Tiers []PlanTier `json:"tiers,omitempty"`
}

// RacePair is one candidate or confirmed race in a RacesResult.
type RacePair struct {
	// A and B are the event ids; AName/BName their display names.
	A     int    `json:"a"`
	B     int    `json:"b"`
	AName string `json:"aName"`
	BName string `json:"bName"`
	// Var is the shared variable witnessing the conflict.
	Var string `json:"var"`
}

// RacesResult reports all three race detectors.
type RacesResult struct {
	// Candidates is the conflicting-pair universe; Exact the CCW-
	// confirmed races; VC and PO the vector-clock and program-order
	// apparent races.
	Candidates []RacePair `json:"candidates"`
	Exact      []RacePair `json:"exact"`
	VC         []RacePair `json:"vc"`
	PO         []RacePair `json:"po"`
	// Nodes is the search effort the exact detector spent.
	Nodes int64 `json:"nodes"`
}

// WitnessResult carries a demonstrating schedule for a relation verdict.
type WitnessResult struct {
	// Rel, A, B echo the query; Verdict is the three-valued answer
	// ("unknown" never appears — a witness query either finishes or
	// errors).
	Rel     string  `json:"rel"`
	A       string  `json:"a"`
	B       string  `json:"b"`
	Verdict Verdict `json:"verdict"`
	// Steps is the action-level schedule with event begin/end boundaries
	// (empty when no schedule accompanies the verdict).
	Steps []string `json:"steps,omitempty"`
}

// JobProgress reports an async matrix job's anytime progress: how many
// ordered pairs are fully decided, and whether the stored result carries
// a checkpoint that a resume request can continue with a larger budget.
type JobProgress struct {
	// Complete mirrors the stored MatrixResult's Complete flag.
	Complete bool `json:"complete"`
	// DecidedPairs / TotalPairs measure anytime progress.
	DecidedPairs int `json:"decidedPairs"`
	TotalPairs   int `json:"totalPairs"`
	// Expanded is the cumulative explored-state count.
	Expanded int64 `json:"expanded"`
	// Resumable reports whether the result body carries a checkpoint.
	Resumable bool `json:"resumable"`
}

// JobResponse is returned by async submissions and job polls.
type JobResponse struct {
	// SchemaVersion stamps the wire schema generation (currently 2).
	SchemaVersion int `json:"schemaVersion"`
	// RequestID identifies the HTTP request that produced this response
	// (the submission and each poll mint their own).
	RequestID string `json:"requestId,omitempty"`
	// ID is the pollable job id.
	ID string `json:"id"`
	// Status is the job lifecycle state.
	Status JobState `json:"status"`
	// Error is set for failed jobs.
	Error string `json:"error,omitempty"`
	// Result is set for done jobs.
	Result json.RawMessage `json:"result,omitempty"`
	// Progress is set for done matrix jobs; a done-but-incomplete job's
	// Result carries a checkpoint to continue from (POST /v1/analyze
	// with resume and a larger budget).
	Progress *JobProgress `json:"progress,omitempty"`
}

// errorResponse is the JSON error body.
type errorResponse struct {
	// SchemaVersion stamps the wire schema generation (currently 2).
	SchemaVersion int `json:"schemaVersion"`
	// RequestID is the server-minted request ID for log correlation.
	RequestID string `json:"requestId,omitempty"`
	// Error is the human-readable failure.
	Error string `json:"error"`
}

// Handlers ------------------------------------------------------------------

var latencyBounds = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request tracing (a minted request ID in
// the X-Request-Id header and the request context), request counting,
// latency observation, and structured logging keyed by the request ID.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tr := &tracer{id: newRequestID()}
		w.Header().Set("X-Request-Id", tr.id)
		r = r.WithContext(withTracer(r.Context(), tr))
		s.metrics.Counter(MetricRequests + "_" + endpoint).Add(1)
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(sr, r)
		elapsed := time.Since(start)
		s.metrics.Histogram(MetricLatency+"_"+endpoint, latencyBounds).Observe(elapsed.Seconds())
		fields := append(tr.logFields(),
			"method", r.Method,
			"path", r.URL.Path,
			"status", sr.status,
			"durMs", ms(elapsed),
			"remote", r.RemoteAddr,
		)
		s.log.Info("request", fields...)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the JSON error body, stamped with the request's ID so
// the client can hand operators a greppable handle even on failures.
func writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	writeJSON(w, status, errorResponse{
		SchemaVersion: SchemaVersion,
		RequestID:     tracerFrom(r.Context()).id,
		Error:         err.Error(),
	})
}

// statusFor maps a job computation error to an HTTP status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, core.ErrBudget):
		return http.StatusUnprocessableEntity
	case errors.Is(err, core.ErrBadCheckpoint):
		return http.StatusUnprocessableEntity
	case errors.Is(err, errQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("service: bad request body: %w", err))
		return false
	}
	return true
}

// resolveExecution materializes the execution under analysis and its
// canonical content digest.
func (s *Server) resolveExecution(src *ExecutionSource) (*model.Execution, string, error) {
	var x *model.Execution
	switch {
	case src.Program != "" && src.Execution != nil:
		return nil, "", fmt.Errorf("service: give either program or execution, not both")
	case src.Program != "":
		prog, err := lang.Parse(src.Program)
		if err != nil {
			return nil, "", err
		}
		seed := src.Seed
		if seed == 0 {
			seed = 1
		}
		tries := src.Tries
		if tries <= 0 {
			tries = 64
		}
		res, err := interp.RunAvoidingDeadlock(prog, tries, seed)
		if err != nil {
			return nil, "", err
		}
		x = res.X
	case src.Execution != nil:
		var err error
		x, err = traceio.LoadExecution(bytes.NewReader(src.Execution))
		if err != nil {
			return nil, "", err
		}
	default:
		return nil, "", fmt.Errorf("service: request needs a program or an execution")
	}
	digest, err := executionDigest(x)
	if err != nil {
		return nil, "", err
	}
	return x, digest, nil
}

func (s *Server) timeout(ms int64) time.Duration {
	d := s.cfg.DefaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

func (s *Server) nodeBudget(b int64) int64 {
	if b <= 0 {
		b = s.cfg.MaxNodes
	}
	if s.cfg.MaxBudget > 0 && (b <= 0 || b > s.cfg.MaxBudget) {
		b = s.cfg.MaxBudget
	}
	return b
}

// matrixLimits is the server-side clamp configuration handed to
// core.MatrixOpts.Normalize — the one place matrix knob defaults and caps
// are applied (the CLIs and bench share the same path).
func (s *Server) matrixLimits() core.MatrixLimits {
	return core.MatrixLimits{MaxWorkers: s.cfg.MaxMatrixWorkers, MaxBudget: s.cfg.MaxBudget}
}

// dispatchOpts parameterizes one dispatch: the cache key (empty disables
// the cache in both directions — resume requests are inherently
// stateful), async vs synchronous delivery, the anytime flag (runs that
// return a partial result with value under a dead context execute even
// when the deadline passed while queued), the client deadline, and the
// admission-control lane (LaneFast routes to the fast pool; anything else
// to the heavy pool).
type dispatchOpts struct {
	key       string
	async     bool
	anytime   bool
	timeoutMs int64
	lane      string
	run       func(ctx context.Context) (jobOutput, error)
	// endpoint and reqJSON identify the request for the write-ahead
	// journal ("analyze"/"races"/"witness" plus the canonical request
	// body); reqJSON is only populated for async submissions on a durable
	// server — the only case that journals.
	endpoint string
	reqJSON  json.RawMessage
	// tracer receives the job's queue wait and phase spans (the request's
	// tracer on the HTTP path, a no-op one during crash recovery).
	tracer *tracer
}

// rejectSubmit maps an admission failure to its wire response: 429 with a
// Retry-After hint for a full queue, 503 for a draining server.
func (s *Server) rejectSubmit(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, errQueueFull) {
		w.Header().Set("Retry-After", "1")
	}
	writeError(w, r, statusFor(err), err)
}

// dispatch runs one analysis job through the queue: cache lookup, then
// either synchronous submit-and-wait or async submit-and-return-id.
// o.run must honor its context; its output body is cached under o.key
// when the output says so (complete results only).
//
// Load shedding: when the heavy queue is at or past the shed depth, an
// anytime request bound for the heavy pool gets its deadline clamped to
// the shed timeout — it still runs, but answers quickly with a partial
// result and a resumable checkpoint instead of deepening the backlog.
// Fast-lane and non-anytime requests are never shed (the former are
// polynomial, the latter have no partial result to degrade to).
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, o dispatchOpts) {
	start := time.Now()
	tr := tracerFrom(r.Context())
	if o.key != "" {
		if body, ok := s.cache.get(o.key); ok {
			tr.setLane(LaneCache)
			writeJSON(w, http.StatusOK, Envelope{
				SchemaVersion: SchemaVersion,
				RequestID:     tr.id,
				Cached:        true,
				ElapsedMs:     ms(time.Since(start)),
				Trace:         tr.info(),
				Result:        body,
			})
			return
		}
	}
	lane := o.lane
	if lane != LaneFast {
		lane = LaneHeavy
	}
	tr.setLane(lane)
	timeout := s.timeout(o.timeoutMs)
	if o.anytime && lane == LaneHeavy && len(s.jobs) >= s.cfg.ShedDepth {
		s.metrics.Gauge(MetricShedMode).Set(1)
		s.metrics.Counter(MetricJobsShed).Add(1)
		tr.setShed()
		if timeout > s.cfg.ShedTimeout {
			timeout = s.cfg.ShedTimeout
		}
	} else if o.anytime {
		s.metrics.Gauge(MetricShedMode).Set(0)
	}
	o.lane = lane

	if o.async {
		sj := s.store.add()
		// Durability ordering: the "accepted" record is on disk before the
		// 202 leaves — an acknowledged job is always recoverable. A wedged
		// journal refuses the work instead.
		if err := s.journalAccepted(sj.id, o.endpoint, o.reqJSON); err != nil {
			sj.set(JobFailed, nil, err.Error())
			writeError(w, r, http.StatusServiceUnavailable,
				fmt.Errorf("service: cannot journal the job; refusing to acknowledge it: %w", err))
			return
		}
		j := s.buildAsyncJob(sj, o, timeout)
		if err := s.submit(j); err != nil {
			j.cancel()
			sj.set(JobFailed, nil, err.Error())
			s.journalRecord(jobRecord{T: "failed", ID: sj.id, Err: err.Error()})
			s.rejectSubmit(w, r, err)
			return
		}
		writeJSON(w, http.StatusAccepted, JobResponse{SchemaVersion: SchemaVersion, RequestID: tr.id, ID: sj.id, Status: JobQueued})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	// Forced shutdown must also cancel in-flight synchronous jobs.
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()
	if o.anytime {
		// Drain checkpointing clips synchronous anytime jobs too: the
		// client gets its partial (with a resume token) instead of holding
		// the drain open.
		stopDrain := context.AfterFunc(s.drainCtx, cancel)
		defer stopDrain()
	}
	j := &job{
		ctx:    ctx,
		cancel: func() {}, // handler owns the sync job's context
		run:    o.run,
		onDone: func(out jobOutput, err error) {
			if err == nil {
				s.cacheStore(o.key, out)
			}
		},
		anytime: o.anytime,
		lane:    lane,
		tracer:  tr,
		done:    make(chan struct{}),
	}
	if err := s.submit(j); err != nil {
		s.rejectSubmit(w, r, err)
		return
	}
	serve := func() {
		if j.err != nil {
			writeError(w, r, statusFor(j.err), j.err)
			return
		}
		writeJSON(w, http.StatusOK, Envelope{
			SchemaVersion: SchemaVersion,
			RequestID:     tr.id,
			Cached:        false,
			ElapsedMs:     ms(time.Since(start)),
			Trace:         tr.info(),
			Result:        j.out.body,
		})
	}
	select {
	case <-j.done:
		serve()
	case <-ctx.Done():
		// The deadline struck mid-job. An anytime analysis returns a
		// partial result with value instead of an error, so give the job
		// a grace period to surface it — a partial matrix answers 200
		// with "complete": false where v1 answered 504. The grace also
		// covers the residual queue wait of a job whose deadline struck
		// while still queued (see Config.PartialGrace).
		select {
		case <-j.done:
			serve()
		case <-time.After(s.cfg.PartialGrace):
			writeError(w, r, statusFor(ctx.Err()), fmt.Errorf("service: %w", ctx.Err()))
		}
	}
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if !s.decode(w, r, &req) {
		return
	}
	o, err := s.prepareAnalyze(&req, tracerFrom(r.Context()))
	if err != nil {
		writeError(w, r, prepareStatus(err), err)
		return
	}
	s.dispatch(w, r, o)
}

// prepareStatus maps a prepare-time failure to its HTTP status: a bad or
// mismatched resume checkpoint is the client's 422 (the request parsed;
// its checkpoint is unprocessable); everything else is a plain 400.
func prepareStatus(err error) int {
	if errors.Is(err, core.ErrBadCheckpoint) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusBadRequest
}

// journalBody marshals a request for the write-ahead journal — only when
// this submission will actually journal (async on a durable server), so
// synchronous requests never pay the copy.
func (s *Server) journalBody(async bool, req any) (json.RawMessage, error) {
	if !async || !s.durable() {
		return nil, nil
	}
	return json.Marshal(req)
}

// prepareAnalyze validates an analyze request and compiles it into a
// dispatchable job. Shared by the HTTP handler and crash recovery —
// errors are returned, not written, so each caller can map them to its
// own surface (HTTP status vs failed journaled job).
func (s *Server) prepareAnalyze(req *AnalyzeRequest, tr *tracer) (dispatchOpts, error) {
	reqJSON, err := s.journalBody(req.Async, req)
	if err != nil {
		return dispatchOpts{}, err
	}
	var x *model.Execution
	var digest string
	err = tr.timePhase("resolve", func() error {
		var rerr error
		x, digest, rerr = s.resolveExecution(&req.ExecutionSource)
		return rerr
	})
	if err != nil {
		return dispatchOpts{}, err
	}

	var kinds []core.RelKind
	if req.Rel != "" {
		kind, err := core.ParseRelKind(req.Rel)
		if err != nil {
			return dispatchOpts{}, err
		}
		kinds = []core.RelKind{kind}
	}

	// The resume token decodes on the request path so a malformed or
	// oversized one is rejected before any work is queued (422, per
	// core.ErrBadCheckpoint; structural validation against the execution
	// happens in the engine).
	var resume *core.Checkpoint
	if req.Resume != "" {
		resume, err = core.DecodeCheckpointString(req.Resume)
		if err != nil {
			return dispatchOpts{}, err
		}
	}

	// Out-of-range resource knobs (budget, workers, tiers) are clamped by
	// core.MatrixOpts.Normalize rather than rejected: they are hints, not
	// semantics — verdicts are identical at every setting.
	pairQuery := req.A != "" || req.B != ""
	opts := core.Options{IgnoreData: req.IgnoreData, MaxNodes: s.nodeBudget(req.Budget), DisablePOR: s.cfg.DisablePOR, DisableSymm: s.cfg.DisableSymm}

	if pairQuery {
		if req.A == "" || req.B == "" || len(kinds) != 1 || req.All {
			return dispatchOpts{}, fmt.Errorf("service: a pair query needs rel, a, and b (and no all)")
		}
		ea, ok := x.EventByLabel(req.A)
		if !ok {
			return dispatchOpts{}, fmt.Errorf("service: no event labeled %q (have %v)", req.A, x.Labels())
		}
		eb, ok := x.EventByLabel(req.B)
		if !ok {
			return dispatchOpts{}, fmt.Errorf("service: no event labeled %q (have %v)", req.B, x.Labels())
		}
		if ea == eb {
			return dispatchOpts{}, fmt.Errorf("service: a and b must name distinct events (both are %q)", req.A)
		}
		kind := kinds[0]
		key := cacheKey(digest, fmt.Sprintf("analyze|pair|rel=%s|a=%s|b=%s|ignoreData=%t", kind, req.A, req.B, req.IgnoreData))
		return dispatchOpts{key: key, async: req.Async, timeoutMs: req.TimeoutMs, endpoint: "analyze", reqJSON: reqJSON, tracer: tr, run: func(ctx context.Context) (jobOutput, error) {
			an, err := core.New(x, opts)
			if err != nil {
				return jobOutput{}, err
			}
			var holds bool
			if err := tr.timePhase("decide", func() error {
				var derr error
				holds, derr = an.Decide(ctx, kind, ea.ID, eb.ID)
				return derr
			}); err != nil {
				return jobOutput{}, err
			}
			s.observeMemo(an)
			s.metrics.Histogram(MetricExploredNodes, nodeBounds).Observe(float64(an.Stats().Nodes))
			body, err := json.Marshal(PairResult{
				Rel: kind.String(), A: req.A, B: req.B,
				Verdict: core.VerdictOf(holds), Nodes: an.Stats().Nodes,
			})
			return jobOutput{body: body, cacheable: true, complete: true}, err
		}}, nil
	}

	// Matrix query: one relation, or all six when none was named.
	relDesc := "*"
	if len(kinds) == 1 {
		relDesc = kinds[0].String()
	} else {
		kinds = core.AllRelKinds
	}
	mopts := core.MatrixOpts{
		Workers: req.Workers,
		Budget:  req.Budget,
		Tiers:   req.Tiers,
		Resume:  resume,
	}
	if s.cfg.DisablePlan {
		mopts.Tiers = -1
	}
	mopts = mopts.Normalize(s.matrixLimits())
	// The engine reports its forward/backward sweep spans to the request
	// trace (the tracer is concurrency-safe; the job runs on a worker).
	mopts.OnPhase = tr.phase

	// Build the polynomial plan on the request path, not the worker: it
	// doubles as the admission controller's cost estimate. A plan with
	// zero residue means the cascade decided every pair — the job's cost
	// is polynomial and proven, so it rides the fast lane past the queue
	// of NP-hard searches. The finished plan is handed to the worker via
	// AnalyzePlanned, so nothing is computed twice. Resumed runs skip
	// planning (the seed travels inside the checkpoint) and are always
	// heavy — a resume exists precisely because the query was hard.
	var built *plan.Plan
	lane := LaneHeavy
	if resume == nil {
		perr := tr.timePhase("plan", func() error {
			var berr error
			built, berr = plan.Build(x, kinds, plan.Options{IgnoreData: req.IgnoreData, Tiers: mopts.Tiers})
			return berr
		})
		if perr != nil {
			return dispatchOpts{}, perr
		}
		if built.Residue == 0 && !s.cfg.DisableFastLane {
			lane = LaneFast
		}
	}
	// The cache key deliberately omits workers and budget: the batch
	// engine's verdicts are identical at every fan-out width, and a
	// budget only decides when a run stops, never what its completed
	// verdicts say. Tiers IS part of the key — verdicts match at every
	// setting, but the plan summary in the payload does not. Resume
	// requests bypass the cache entirely: serving a cached plan-bearing
	// body for a resumed run would misreport provenance, and a partial
	// body must never be cached at all.
	key := cacheKey(digest, fmt.Sprintf("analyze|matrix|rel=%s|ignoreData=%t|tiers=%d|symm=%t", relDesc, req.IgnoreData, mopts.Tiers, !s.cfg.DisableSymm))
	if resume != nil {
		key = ""
		s.metrics.Counter(MetricAnalyzeResumed).Add(1)
	}
	return dispatchOpts{key: key, async: req.Async, anytime: true, timeoutMs: req.TimeoutMs, lane: lane, endpoint: "analyze", reqJSON: reqJSON, tracer: tr, run: func(ctx context.Context) (jobOutput, error) {
		res, err := plan.AnalyzePlanned(ctx, x, kinds, opts, mopts, built)
		if err != nil {
			return jobOutput{}, err
		}
		s.observeMemoStats(res.Stats)
		s.metrics.Histogram(MetricExploredNodes, nodeBounds).Observe(float64(res.Stats.Nodes))
		if res.Plan != nil {
			s.observePlan(res.Plan)
		}
		m := res.Matrix
		out := MatrixResult{
			Complete:     m.Complete,
			Relations:    map[string][][2]int{},
			DecidedPairs: m.DecidedPairs(),
			TotalPairs:   m.TotalPairs(),
			Expanded:     m.Expanded,
			Nodes:        res.Stats.Nodes,
		}
		for e := 0; e < x.NumEvents(); e++ {
			out.Events = append(out.Events, x.EventName(model.EventID(e)))
		}
		relPairs := func(rel *model.Relation) [][2]int {
			pairs := [][2]int{}
			for _, p := range rel.Pairs() {
				pairs = append(pairs, [2]int{int(p[0]), int(p[1])})
			}
			return pairs
		}
		for _, kind := range kinds {
			out.Relations[kind.String()] = relPairs(m.Relations[kind])
		}
		if !m.Complete {
			s.metrics.Counter(MetricAnalyzePartial).Add(1)
			out.Undecided = map[string][][2]int{}
			for _, kind := range kinds {
				out.Undecided[kind.String()] = relPairs(m.Undecided[kind])
			}
			out.Checkpoint = m.Checkpoint
			out.Cause = causeName(m.Cause)
		}
		if res.Plan != nil {
			out.Plan = planSummary(res.Plan)
		}
		body, err := json.Marshal(out)
		progress := &JobProgress{
			Complete:     m.Complete,
			DecidedPairs: out.DecidedPairs,
			TotalPairs:   out.TotalPairs,
			Expanded:     m.Expanded,
			Resumable:    m.Checkpoint != nil,
		}
		jo := jobOutput{body: body, cacheable: m.Complete && resume == nil, progress: progress, complete: m.Complete}
		if !m.Complete {
			jo.cause = out.Cause
			if m.Checkpoint != nil {
				if cs, cerr := m.Checkpoint.EncodeString(); cerr == nil {
					jo.checkpoint = cs
				}
			}
		}
		return jo, err
	}}, nil
}

// causeName renders an anytime interrupt cause for the wire.
func causeName(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, core.ErrBudget):
		return "budget"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	}
	return err.Error()
}

// planSummary converts a plan into its wire form.
func planSummary(p *plan.Plan) *PlanSummary {
	out := &PlanSummary{TotalPairs: p.TotalPairs, ResiduePairs: p.Residue}
	for _, st := range p.Tiers {
		out.Tiers = append(out.Tiers, PlanTier{
			Tier:          st.Tier.String(),
			PairsDecided:  st.PairsDecided,
			FactsDecided:  st.FactsDecided,
			EventsScanned: st.EventsScanned,
			Rounds:        st.Rounds,
			OrderedPairs:  st.OrderedPairs,
		})
	}
	return out
}

// observePlan accumulates per-tier decided-pair counters across matrix
// jobs, making the planner's leverage visible on /metrics.
func (s *Server) observePlan(p *plan.Plan) {
	for _, st := range p.Tiers {
		s.metrics.Counter(MetricPlanPairs + "_" + st.Tier.String()).Add(int64(st.PairsDecided))
	}
	s.metrics.Counter(MetricPlanPairs + "_" + plan.TierExact.String()).Add(int64(p.Residue))
}

func (s *Server) handleRaces(w http.ResponseWriter, r *http.Request) {
	var req RacesRequest
	if !s.decode(w, r, &req) {
		return
	}
	o, err := s.prepareRaces(&req, tracerFrom(r.Context()))
	if err != nil {
		writeError(w, r, prepareStatus(err), err)
		return
	}
	s.dispatch(w, r, o)
}

// prepareRaces validates a races request and compiles it into a
// dispatchable job (shared by the HTTP handler and crash recovery).
func (s *Server) prepareRaces(req *RacesRequest, tr *tracer) (dispatchOpts, error) {
	reqJSON, err := s.journalBody(req.Async, req)
	if err != nil {
		return dispatchOpts{}, err
	}
	var x *model.Execution
	var digest string
	err = tr.timePhase("resolve", func() error {
		var rerr error
		x, digest, rerr = s.resolveExecution(&req.ExecutionSource)
		return rerr
	})
	if err != nil {
		return dispatchOpts{}, err
	}
	opts := core.Options{IgnoreData: req.IgnoreData, MaxNodes: s.nodeBudget(req.Budget), DisablePOR: s.cfg.DisablePOR, DisableSymm: s.cfg.DisableSymm}
	key := cacheKey(digest, fmt.Sprintf("races|ignoreData=%t", req.IgnoreData))
	return dispatchOpts{key: key, async: req.Async, timeoutMs: req.TimeoutMs, endpoint: "races", reqJSON: reqJSON, tracer: tr, run: func(ctx context.Context) (jobOutput, error) {
		var rep *race.Report
		if err := tr.timePhase("detect", func() error {
			var derr error
			rep, derr = race.DetectCtx(ctx, x, opts)
			return derr
		}); err != nil {
			return jobOutput{}, err
		}
		s.metrics.Histogram(MetricExploredNodes, nodeBounds).Observe(float64(rep.Nodes))
		conv := func(pairs []race.Pair) []RacePair {
			out := []RacePair{}
			for _, p := range pairs {
				out = append(out, RacePair{
					A: int(p.A), B: int(p.B),
					AName: x.EventName(p.A), BName: x.EventName(p.B),
					Var: p.Var,
				})
			}
			return out
		}
		body, err := json.Marshal(RacesResult{
			Candidates: conv(rep.Candidates),
			Exact:      conv(rep.Exact),
			VC:         conv(rep.VC),
			PO:         conv(rep.PO),
			Nodes:      rep.Nodes,
		})
		return jobOutput{body: body, cacheable: true, complete: true}, err
	}}, nil
}

func (s *Server) handleWitness(w http.ResponseWriter, r *http.Request) {
	var req WitnessRequest
	if !s.decode(w, r, &req) {
		return
	}
	o, err := s.prepareWitness(&req, tracerFrom(r.Context()))
	if err != nil {
		writeError(w, r, prepareStatus(err), err)
		return
	}
	s.dispatch(w, r, o)
}

// prepareWitness validates a witness request and compiles it into a
// dispatchable job (shared by the HTTP handler and crash recovery).
func (s *Server) prepareWitness(req *WitnessRequest, tr *tracer) (dispatchOpts, error) {
	reqJSON, err := s.journalBody(req.Async, req)
	if err != nil {
		return dispatchOpts{}, err
	}
	var x *model.Execution
	var digest string
	err = tr.timePhase("resolve", func() error {
		var rerr error
		x, digest, rerr = s.resolveExecution(&req.ExecutionSource)
		return rerr
	})
	if err != nil {
		return dispatchOpts{}, err
	}
	kind, err := core.ParseRelKind(req.Rel)
	if err != nil {
		return dispatchOpts{}, err
	}
	ea, ok := x.EventByLabel(req.A)
	if !ok {
		return dispatchOpts{}, fmt.Errorf("service: no event labeled %q (have %v)", req.A, x.Labels())
	}
	eb, ok := x.EventByLabel(req.B)
	if !ok {
		return dispatchOpts{}, fmt.Errorf("service: no event labeled %q (have %v)", req.B, x.Labels())
	}
	if ea == eb {
		return dispatchOpts{}, fmt.Errorf("service: a and b must name distinct events (both are %q)", req.A)
	}
	opts := core.Options{IgnoreData: req.IgnoreData, MaxNodes: s.nodeBudget(req.Budget), DisablePOR: s.cfg.DisablePOR, DisableSymm: s.cfg.DisableSymm}
	key := cacheKey(digest, fmt.Sprintf("witness|rel=%s|a=%s|b=%s|ignoreData=%t", kind, req.A, req.B, req.IgnoreData))
	return dispatchOpts{key: key, async: req.Async, timeoutMs: req.TimeoutMs, endpoint: "witness", reqJSON: reqJSON, tracer: tr, run: func(ctx context.Context) (jobOutput, error) {
		an, err := core.New(x, opts)
		if err != nil {
			return jobOutput{}, err
		}
		var wit core.Witness
		if err := tr.timePhase("witness", func() error {
			var werr error
			wit, werr = an.WitnessSchedule(ctx, kind, ea.ID, eb.ID)
			return werr
		}); err != nil {
			return jobOutput{}, err
		}
		s.observeMemo(an)
		s.metrics.Histogram(MetricExploredNodes, nodeBounds).Observe(float64(an.Stats().Nodes))
		body, err := json.Marshal(WitnessResult{
			Rel: kind.String(), A: req.A, B: req.B,
			Verdict: core.VerdictOf(wit.Holds),
			Steps:   core.FormatSteps(x, wit.Steps),
		})
		return jobOutput{body: body, cacheable: true, complete: true}, err
	}}, nil
}

// observeMemo exports a finished search job's completion-memo occupancy:
// the gauges sample the most recent job's table (each job owns a private
// analyzer), the grow counter accumulates across jobs. Together with the
// cache and queue metrics this makes memo-table pressure — the dominant
// memory consumer of a hard query — visible on /metrics.
func (s *Server) observeMemo(an *core.Analyzer) {
	s.observeMemoStats(an.Stats())
}

// observeMemoStats is observeMemo for callers that only hold the stats
// (the planned matrix path runs its analyzer inside plan.Analyze).
func (s *Server) observeMemoStats(st core.Stats) {
	s.metrics.Gauge(MetricMemoEntries).Set(int64(st.CompleteMemo))
	s.metrics.Gauge(MetricMemoBytes).Set(st.MemoBytes)
	s.metrics.Gauge(MetricMemoLoadPermille).Set(int64(st.MemoLoad * 1000))
	s.metrics.Counter(MetricMemoGrows).Add(st.MemoGrows)
	s.metrics.Gauge(MetricSymmClasses).Set(int64(st.SymmClasses))
	s.metrics.Counter(MetricSymmCollapses).Add(st.SymmCollapses)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sj, ok := s.store.get(id)
	if !ok {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("service: no job %q", id))
		return
	}
	state, body, errs, progress := sj.snapshot()
	writeJSON(w, http.StatusOK, JobResponse{
		SchemaVersion: SchemaVersion,
		RequestID:     tracerFrom(r.Context()).id,
		ID:            id, Status: state, Error: errs,
		Result: body, Progress: progress,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.shutdownMu.Lock()
	draining := s.closed
	s.shutdownMu.Unlock()
	status := "ok"
	code := http.StatusOK
	if draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":     status,
		"workers":    s.cfg.Workers,
		"queueDepth": s.queueDepth.Value(),
		"fastLane":   !s.cfg.DisableFastLane,
		"shedding":   len(s.jobs) >= s.cfg.ShedDepth,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}
