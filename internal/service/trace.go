package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Request tracing. Every HTTP request gets a process-unique request ID
// minted by the instrument wrapper, echoed in the X-Request-Id response
// header, stamped on every response envelope, and attached to every
// structured log line the request produces — so an operator can join a
// client-reported envelope to the server's logs with one grep. Alongside
// the ID the tracer accumulates span-style phase timings (queue wait,
// plan, forward/backward sweeps, ...) that ride back to the client in the
// envelope's trace block: for a workload whose cost is NP-hard in the
// worst case, "where did my 30 seconds go" must be answerable per request,
// not just in aggregate.

// ridPrefix is this process's random request-id prefix; ridSeq the
// per-process sequence. IDs look like "r-9f3a2c-000042": unique within
// the process by sequence, across restarts by prefix.
var (
	ridPrefix = func() string {
		var b [3]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "r-local"
		}
		return "r-" + hex.EncodeToString(b[:])
	}()
	ridSeq atomic.Int64
)

// newRequestID mints a process-unique request ID.
func newRequestID() string {
	return fmt.Sprintf("%s-%06d", ridPrefix, ridSeq.Add(1))
}

// Phase is one named span of a request's lifecycle, in milliseconds.
// Phases the engine reports: "resolve" (parsing/running the execution
// source), "plan" (polynomial cascade), "forward" and "backward" (the
// batch engine's two sweeps), "decide" / "detect" / "witness" for the
// non-matrix endpoints.
type Phase struct {
	// Name identifies the span.
	Name string `json:"name"`
	// Ms is the span's wall time in milliseconds.
	Ms float64 `json:"ms"`
}

// TraceInfo is the per-request trace block echoed in response envelopes.
type TraceInfo struct {
	// RequestID is the server-minted request ID; the same value is in the
	// X-Request-Id header and on every log line for this request.
	RequestID string `json:"requestId"`
	// Lane reports how admission control routed the request: "cache"
	// (served from the result cache, no job ran), "fast" (the cheap-
	// request lane: the polynomial planner decided every pair, so no
	// exponential search was needed), or "heavy" (the general pool).
	// Empty for requests that never touched admission (health, metrics).
	Lane string `json:"lane,omitempty"`
	// Shed reports that load shedding degraded this request: the server
	// was under queue pressure, so the request's deadline was clamped to
	// the shed timeout and a partial anytime result (with a resumable
	// checkpoint) was served instead of waiting out the full analysis.
	Shed bool `json:"shed,omitempty"`
	// QueueWaitMs is the time the job spent admitted-but-not-running.
	QueueWaitMs float64 `json:"queueWaitMs"`
	// Phases are the request's span timings in the order they completed.
	Phases []Phase `json:"phases,omitempty"`
}

// Lane values reported in TraceInfo.Lane.
const (
	// LaneCache marks responses served from the result cache.
	LaneCache = "cache"
	// LaneFast marks planner-decidable requests served by the fast pool.
	LaneFast = "fast"
	// LaneHeavy marks requests served by the general worker pool.
	LaneHeavy = "heavy"
)

// tracer carries one request's ID and accumulating trace block. It is
// created by instrument, travels via the request context into handlers
// and jobs, and is snapshotted into the response envelope. The mutex
// covers handler-goroutine vs worker-goroutine handoff (async jobs record
// phases after the submitting handler returned).
type tracer struct {
	id string

	mu        sync.Mutex
	lane      string
	shed      bool
	queueWait time.Duration
	phases    []Phase
}

// phase records one completed span.
func (tr *tracer) phase(name string, d time.Duration) {
	tr.mu.Lock()
	tr.phases = append(tr.phases, Phase{Name: name, Ms: ms(d)})
	tr.mu.Unlock()
}

// timePhase runs fn and records its wall time under name.
func (tr *tracer) timePhase(name string, fn func() error) error {
	start := time.Now()
	err := fn()
	tr.phase(name, time.Since(start))
	return err
}

// setLane records the admission-control routing decision.
func (tr *tracer) setLane(lane string) {
	tr.mu.Lock()
	tr.lane = lane
	tr.mu.Unlock()
}

// setShed marks the request as degraded by load shedding.
func (tr *tracer) setShed() {
	tr.mu.Lock()
	tr.shed = true
	tr.mu.Unlock()
}

// setQueueWait records the admitted-but-not-running span.
func (tr *tracer) setQueueWait(d time.Duration) {
	tr.mu.Lock()
	tr.queueWait = d
	tr.mu.Unlock()
}

// info snapshots the trace block for the response envelope.
func (tr *tracer) info() *TraceInfo {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return &TraceInfo{
		RequestID:   tr.id,
		Lane:        tr.lane,
		Shed:        tr.shed,
		QueueWaitMs: ms(tr.queueWait),
		Phases:      append([]Phase(nil), tr.phases...),
	}
}

// logFields returns the trace's structured-log attributes (always led by
// the request ID, so log lines join to envelopes).
func (tr *tracer) logFields() []any {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	fields := []any{"rid", tr.id}
	if tr.lane != "" {
		fields = append(fields, "lane", tr.lane, "queueWaitMs", ms(tr.queueWait))
	}
	if tr.shed {
		fields = append(fields, "shed", true)
	}
	for _, p := range tr.phases {
		fields = append(fields, "phase_"+p.Name+"_ms", p.Ms)
	}
	return fields
}

// ms converts a duration to float milliseconds (the wire unit).
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// tracerKey keys the tracer in a request context.
type tracerKey struct{}

// withTracer attaches tr to ctx.
func withTracer(ctx context.Context, tr *tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, tr)
}

// tracerFrom recovers the request's tracer; a detached fallback (fresh ID,
// recorded nowhere) keeps callers nil-safe if a handler is mounted outside
// instrument.
func tracerFrom(ctx context.Context) *tracer {
	if tr, ok := ctx.Value(tracerKey{}).(*tracer); ok {
		return tr
	}
	return &tracer{id: newRequestID()}
}
