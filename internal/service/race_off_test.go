//go:build !race

package service

// raceDetectorEnabled is false in native (non -race) test builds; see
// race_on_test.go.
const raceDetectorEnabled = false
