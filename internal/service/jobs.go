package service

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Admission-control rejections. The two cases answer differently on the
// wire: a full queue is transient overload, so the client gets 429 with a
// Retry-After hint; a draining server will not come back for this
// connection, so the client gets 503 and should re-resolve.
var (
	// errQueueFull is returned by submit when the target lane's accept
	// queue is at capacity; handlers map it to 429 + Retry-After.
	errQueueFull = errors.New("service: queue full, retry later")
	// errDraining is returned by submit when the server is shutting down;
	// handlers map it to 503.
	errDraining = errors.New("service: shutting down")
)

// jobOutput is what a job's run function produces: the response body,
// whether the result may enter the result cache (complete analyses only —
// a partial anytime result must never be served as if it were complete),
// and the anytime progress the jobs endpoint reports for async polls.
// The complete/checkpoint/cause triple is the durability layer's view of
// an anytime outcome: it decides whether a partial was clipped by server
// drain (journal "checkpointed", resume next boot) or requested by the
// client (terminal).
type jobOutput struct {
	body      []byte
	cacheable bool
	progress  *JobProgress
	// complete reports whether the analysis decided everything it was
	// asked (non-anytime runs always set it true on success).
	complete bool
	// checkpoint is the base64 resume token of a partial anytime result
	// ("" when complete or when the run kind has no checkpoints).
	checkpoint string
	// cause names why a partial stopped ("deadline", "budget",
	// "canceled"; "" when complete).
	cause string
}

// job is one unit of analysis work bound for the worker pool. The ctx
// carries the request deadline; workers pass it into the core engine's
// context-aware search so an abandoned job stops burning CPU.
type job struct {
	ctx    context.Context
	cancel context.CancelFunc
	// run computes the result body. It executes on a worker goroutine
	// with a private core.Analyzer; it must honor ctx.
	run func(ctx context.Context) (jobOutput, error)
	// onDone, when non-nil, observes the outcome on the worker goroutine
	// (used for caching and async bookkeeping) before done is closed.
	onDone func(out jobOutput, err error)
	// anytime marks jobs whose run yields a partial result with value
	// under a dead context (matrix analyses). Such jobs execute even when
	// their deadline passed while queued — the run aborts at its first
	// cancellation poll and surfaces a resumable partial, where a
	// non-anytime job would just burn CPU toward an error nobody reads.
	anytime bool
	// lane is the admission-control routing decision (LaneFast or
	// LaneHeavy): which worker pool runs the job and which queue-wait
	// histogram its wait lands in.
	lane string
	// submitted is when submit accepted the job; runJob derives the
	// queue-wait span from it.
	submitted time.Time
	// tracer, when non-nil, receives the job's queue wait and any phase
	// timings its run records.
	tracer *tracer

	done chan struct{}
	out  jobOutput
	err  error
}

// submit enqueues j on its lane without blocking. It fails with
// errQueueFull when that lane's queue is at capacity and errDraining when
// the server no longer accepts work.
func (s *Server) submit(j *job) error {
	queue := s.jobs
	if j.lane == LaneFast {
		queue = s.fastJobs
	}
	s.shutdownMu.Lock()
	if s.closed {
		s.shutdownMu.Unlock()
		s.metrics.Counter(MetricJobsRejected).Add(1)
		return errDraining
	}
	// Stamp before the send: the receiving worker reads submitted, and a
	// send can be received the instant it completes.
	j.submitted = time.Now()
	select {
	case queue <- j:
		s.queueDepth.Add(1)
		if j.lane == LaneFast {
			s.metrics.Counter(MetricJobsFastLane).Add(1)
		}
		s.shutdownMu.Unlock()
		return nil
	default:
		s.shutdownMu.Unlock()
		s.metrics.Counter(MetricJobsRejected).Add(1)
		s.metrics.Counter(MetricJobsThrottled).Add(1)
		return errQueueFull
	}
}

// worker drains one lane's job channel until it is closed (graceful
// shutdown closes both after the last submit). Each job runs under its own
// context; a non-anytime job whose deadline already passed while queued is
// failed without running.
func (s *Server) worker(queue chan *job) {
	defer s.workerWG.Done()
	for j := range queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	defer s.queueDepth.Add(-1)
	defer j.cancel()
	wait := time.Since(j.submitted)
	lane := j.lane
	if lane == "" {
		lane = LaneHeavy
	}
	s.metrics.Histogram(MetricQueueWait+"_"+lane, queueWaitBounds).Observe(wait.Seconds())
	if j.tracer != nil {
		j.tracer.setQueueWait(wait)
	}
	if err := j.ctx.Err(); err != nil && !j.anytime {
		j.err = err
	} else {
		s.jobsRunning.Add(1)
		j.out, j.err = j.run(j.ctx)
		s.jobsRunning.Add(-1)
	}
	s.metrics.Counter(MetricJobsCompleted).Add(1)
	if j.err != nil && (errors.Is(j.err, context.DeadlineExceeded) || errors.Is(j.err, context.Canceled)) {
		s.metrics.Counter(MetricJobsDeadline).Add(1)
	}
	if j.onDone != nil {
		j.onDone(j.out, j.err)
	}
	if j.tracer != nil {
		s.log.Info("job done", append(j.tracer.logFields(), "err", errString(j.err))...)
	}
	close(j.done)
}

// errString renders an error for a log attribute ("" when nil).
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// Async job store -----------------------------------------------------------

// JobState names the lifecycle phase of an async job.
type JobState string

// Async job lifecycle states reported by GET /v1/jobs/{id}.
const (
	// JobQueued means the job is admitted but no worker has picked it up.
	JobQueued JobState = "queued"
	// JobRunning means a worker is computing the result.
	JobRunning JobState = "running"
	// JobDone means the result body is available.
	JobDone JobState = "done"
	// JobFailed means the computation ended with an error.
	JobFailed JobState = "failed"
)

// storedJob tracks one async submission for polling. For anytime matrix
// jobs the progress field survives alongside the result body: a partial
// result's body carries the checkpoint, so the poll response is enough to
// continue the analysis with a larger budget (POST /v1/analyze with
// resume set to the checkpoint).
type storedJob struct {
	mu       sync.Mutex
	id       string
	state    JobState
	body     []byte
	errs     string
	progress *JobProgress
}

func (sj *storedJob) set(state JobState, body []byte, errs string) {
	sj.mu.Lock()
	sj.state, sj.body, sj.errs = state, body, errs
	sj.mu.Unlock()
}

func (sj *storedJob) setProgress(p *JobProgress) {
	sj.mu.Lock()
	sj.progress = p
	sj.mu.Unlock()
}

func (sj *storedJob) snapshot() (JobState, []byte, string, *JobProgress) {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	return sj.state, sj.body, sj.errs, sj.progress
}

// jobStore retains recent async jobs for polling, bounded by maxJobs
// (oldest evicted first — pollers of evicted ids get 404).
type jobStore struct {
	mu      sync.Mutex
	seq     int64
	maxJobs int
	order   *list.List // oldest at back
	byID    map[string]*list.Element
	// onEvict, when non-nil, observes each evicted job id outside the
	// store lock (the durability layer garbage-collects that job's blobs).
	onEvict func(id string)
}

func newJobStore(maxJobs int) *jobStore {
	return &jobStore{maxJobs: maxJobs, order: list.New(), byID: map[string]*list.Element{}}
}

// add registers a fresh queued job and returns it with a unique id.
func (st *jobStore) add() *storedJob {
	st.mu.Lock()
	st.seq++
	sj := &storedJob{id: fmt.Sprintf("j%06d", st.seq), state: JobQueued}
	st.byID[sj.id] = st.order.PushFront(sj)
	evicted := st.evictLocked()
	onEvict := st.onEvict
	st.mu.Unlock()
	notifyEvicted(onEvict, evicted)
	return sj
}

// restore re-registers a journaled job under its original id during crash
// recovery, bumping the id sequence past it so fresh submissions never
// collide with recovered ids. Insertion order is replay order, keeping
// eviction order stable across restarts.
func (st *jobStore) restore(id string, state JobState, body []byte, errs string) *storedJob {
	st.mu.Lock()
	var n int64
	if _, err := fmt.Sscanf(id, "j%06d", &n); err == nil && n > st.seq {
		st.seq = n
	}
	if el, ok := st.byID[id]; ok {
		// Duplicate id across journal segments: later records win.
		sj := el.Value.(*storedJob)
		sj.set(state, body, errs)
		st.mu.Unlock()
		return sj
	}
	sj := &storedJob{id: id, state: state, body: body, errs: errs}
	st.byID[id] = st.order.PushFront(sj)
	evicted := st.evictLocked()
	onEvict := st.onEvict
	st.mu.Unlock()
	notifyEvicted(onEvict, evicted)
	return sj
}

// evictLocked trims the store to maxJobs and returns the evicted ids.
func (st *jobStore) evictLocked() []string {
	var evicted []string
	for st.order.Len() > st.maxJobs {
		back := st.order.Back()
		st.order.Remove(back)
		id := back.Value.(*storedJob).id
		delete(st.byID, id)
		evicted = append(evicted, id)
	}
	return evicted
}

func notifyEvicted(onEvict func(id string), ids []string) {
	if onEvict == nil {
		return
	}
	for _, id := range ids {
		onEvict(id)
	}
}

// get looks up a job by id.
func (st *jobStore) get(id string) (*storedJob, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.byID[id]
	if !ok {
		return nil, false
	}
	return el.Value.(*storedJob), true
}
