package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// readTestdataProgram loads a mini-language program from the repository
// testdata corpus.
func readTestdataProgram(t *testing.T, name string) string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

// envelopeOf decodes a 200 response body into its envelope and fails the
// test on any mismatch with the tracing contract (request ID present and
// equal to the X-Request-Id header and the trace block's).
func envelopeOf(t *testing.T, resp *http.Response, body []byte) Envelope {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("bad envelope: %v: %s", err, body)
	}
	if env.RequestID == "" {
		t.Fatalf("envelope without a request id: %s", body)
	}
	if hdr := resp.Header.Get("X-Request-Id"); hdr != env.RequestID {
		t.Fatalf("X-Request-Id %q != envelope requestId %q", hdr, env.RequestID)
	}
	if env.Trace == nil || env.Trace.RequestID != env.RequestID {
		t.Fatalf("trace block missing or mismatched: %s", body)
	}
	return env
}

// TestAdmissionLaneClassification drives the lane classifier across its
// boundaries: planner-decidable matrix queries ride the fast lane,
// everything with exponential residue (or no plan at all) goes heavy,
// cache hits short-circuit both, and the escape hatch disables the fast
// lane entirely.
func TestAdmissionLaneClassification(t *testing.T) {
	handshake := readTestdataProgram(t, "handshake.evo")
	figure1 := readTestdataProgram(t, "figure1.evo")

	cases := []struct {
		name string
		cfg  Config
		body map[string]any
		want string
	}{
		{
			name: "planner-decidable matrix rides fast",
			body: map[string]any{"program": handshake, "all": true},
			want: LaneFast,
		},
		{
			name: "residue-bearing matrix goes heavy",
			body: map[string]any{"program": figure1, "all": true},
			want: LaneHeavy,
		},
		{
			name: "planner disabled per request goes heavy",
			body: map[string]any{"program": handshake, "all": true, "tiers": -1},
			want: LaneHeavy,
		},
		{
			name: "planner disabled server-wide goes heavy",
			cfg:  Config{Workers: 2, DisablePlan: true},
			body: map[string]any{"program": handshake, "all": true},
			want: LaneHeavy,
		},
		{
			name: "fast lane disabled goes heavy",
			cfg:  Config{Workers: 2, DisableFastLane: true},
			body: map[string]any{"program": handshake, "all": true},
			want: LaneHeavy,
		},
		{
			name: "pair query goes heavy",
			body: map[string]any{"program": handshake, "rel": "MHB", "a": "a", "b": "b"},
			want: LaneHeavy,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := c.cfg
			if cfg.Workers == 0 {
				cfg.Workers = 2
			}
			_, ts := newTestServer(t, cfg)
			resp, body := postJSON(t, ts.URL+"/v1/analyze", c.body)
			env := envelopeOf(t, resp, body)
			if env.Trace.Lane != c.want {
				t.Errorf("lane = %q, want %q (trace %+v)", env.Trace.Lane, c.want, env.Trace)
			}
			// The same request again must short-circuit to the cache lane.
			resp, body = postJSON(t, ts.URL+"/v1/analyze", c.body)
			env = envelopeOf(t, resp, body)
			if !env.Cached || env.Trace.Lane != LaneCache {
				t.Errorf("second request: cached=%t lane=%q, want cache hit", env.Cached, env.Trace.Lane)
			}
		})
	}
}

// TestAdmissionResumeGoesHeavy checks the resume path: a checkpoint
// continuation skips planning and must always take the heavy lane.
func TestAdmissionResumeGoesHeavy(t *testing.T) {
	figure1 := readTestdataProgram(t, "figure1.evo")
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{
		"program": figure1, "all": true, "budget": 16,
	})
	env := envelopeOf(t, resp, body)
	var mr MatrixResult
	if err := json.Unmarshal(env.Result, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Complete || mr.Checkpoint == nil {
		t.Fatalf("budget-starved run should be partial with a checkpoint (complete=%t)", mr.Complete)
	}
	resp, body = postJSON(t, ts.URL+"/v1/analyze", map[string]any{
		"program": figure1, "all": true, "budget": 1 << 30, "resume": mr.Checkpoint,
	})
	env = envelopeOf(t, resp, body)
	if env.Trace.Lane != LaneHeavy {
		t.Errorf("resumed request lane = %q, want heavy", env.Trace.Lane)
	}
}

// blockWorkers parks `workers` of lane's workers on inert jobs and then
// fills `queued` of its queue slots, blocking everything until the
// returned release func is called. Parking is sequenced — each worker is
// confirmed busy before the queue is filled — so admission tests get a
// deterministic pool state instead of racing against dequeue timing.
func blockWorkers(t *testing.T, s *Server, lane string, workers, queued int) (release func()) {
	t.Helper()
	ch := make(chan struct{})
	var started atomic.Int32
	done := make([]chan struct{}, 0, workers+queued)
	released := false
	release = func() {
		if released {
			return
		}
		released = true
		close(ch)
		for _, d := range done {
			<-d
		}
	}
	// Register before the first submit: if a submit fails mid-way, the
	// blockers already parked on a worker must still be released or the
	// server's shutdown cleanup would wait on them forever.
	t.Cleanup(release)
	queue := s.jobs
	if lane == LaneFast {
		queue = s.fastJobs
	}
	mkBlocker := func() *job {
		return &job{
			ctx:    context.Background(),
			cancel: func() {},
			lane:   lane,
			run: func(ctx context.Context) (jobOutput, error) {
				started.Add(1)
				<-ch
				return jobOutput{}, nil
			},
			done: make(chan struct{}),
		}
	}
	waitFor := func(cond func() bool, what string) {
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("blockWorkers: %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < workers; i++ {
		j := mkBlocker()
		if err := s.submit(j); err != nil {
			t.Fatalf("worker blocker %d: %v", i, err)
		}
		done = append(done, j.done)
		want := i + 1
		waitFor(func() bool { return int(started.Load()) >= want }, "worker never parked")
	}
	for i := 0; i < queued; i++ {
		j := mkBlocker()
		if err := s.submit(j); err != nil {
			t.Fatalf("queue blocker %d: %v", i, err)
		}
		done = append(done, j.done)
		want := i + 1
		waitFor(func() bool { return len(queue) >= want }, "queue slot never filled")
	}
	return release
}

// TestAdmissionQueueFull429 fills each lane's queue deterministically
// with parked jobs and checks the overflow answer: 429, a Retry-After
// hint, and the throttle counters moving — for the heavy lane and the
// fast lane alike.
func TestAdmissionQueueFull429(t *testing.T) {
	handshake := readTestdataProgram(t, "handshake.evo")
	figure1 := readTestdataProgram(t, "figure1.evo")

	cases := []struct {
		name string
		lane string
		body map[string]any
	}{
		{
			name: "heavy queue overflow",
			lane: LaneHeavy,
			body: map[string]any{"program": figure1, "all": true},
		},
		{
			name: "fast queue overflow",
			lane: LaneFast,
			body: map[string]any{"program": handshake, "all": true},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			srv, ts := newTestServer(t, Config{
				Workers: 1, QueueDepth: 1, FastWorkers: 1, FastQueueDepth: 1,
				// Keep shedding out of this test's way: it would clamp the
				// probe's deadline, not change its admission.
				ShedDepth: 100,
			})
			// One blocker parks the lane's worker, the second fills its
			// one queue slot.
			blockWorkers(t, srv, c.lane, 1, 1)
			resp, body := postJSON(t, ts.URL+"/v1/analyze", c.body)
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without a Retry-After header")
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.RequestID == "" {
				t.Errorf("429 body without a request id: %s", body)
			}
			if n := srv.Metrics().Counter(MetricJobsThrottled).Value(); n != 1 {
				t.Errorf("jobs_throttled = %d, want 1", n)
			}
		})
	}
}

// TestShedPartialSoundAgainstFullMatrix forces shed mode with parked
// jobs, sends a matrix query with a generous client deadline, and checks
// the degraded answer: 200, shed-marked, partial with a checkpoint — and
// SOUND, i.e. nothing the partial asserts or omits contradicts the full
// matrix computed afterwards on an idle server.
func TestShedPartialSoundAgainstFullMatrix(t *testing.T) {
	prog := readTestdataProgram(t, "barrier6.evo")
	srv, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8,
		ShedDepth:    1,
		ShedTimeout:  time.Millisecond,
		PartialGrace: 30 * time.Second,
	})
	// Park the heavy worker and leave one job sitting in the queue: the
	// occupancy is at ShedDepth, so the next anytime request is shed.
	release := blockWorkers(t, srv, LaneHeavy, 1, 1)

	type result struct {
		resp *http.Response
		body []byte
	}
	ch := make(chan result, 1)
	go func() {
		// tiers: -1 sidesteps the planner's pre-solved seed so the exact
		// search has real work left — otherwise even a 1ms clamped
		// deadline is enough to finish and there is no partial to check.
		resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{
			"program": prog, "all": true, "timeoutMs": 20000, "tiers": -1,
		})
		ch <- result{resp, body}
	}()
	// Wait until the shed request is queued behind the parked jobs, then
	// let the queue drain so it runs (and instantly hits its clamped
	// deadline).
	deadline := time.Now().Add(10 * time.Second)
	for len(srv.jobs) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("shed request never reached the queue")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Let the clamped 1ms deadline expire while the request is still
	// queued; releasing too quickly would let the analysis finish inside
	// its deadline and leave no partial to validate.
	time.Sleep(20 * time.Millisecond)
	release()
	res := <-ch

	env := envelopeOf(t, res.resp, res.body)
	if !env.Trace.Shed {
		t.Fatalf("trace not marked shed: %+v", env.Trace)
	}
	if env.Trace.Lane != LaneHeavy {
		t.Errorf("shed request lane = %q, want heavy", env.Trace.Lane)
	}
	var partial MatrixResult
	if err := json.Unmarshal(env.Result, &partial); err != nil {
		t.Fatal(err)
	}
	if partial.Complete {
		t.Skip("analysis finished inside the shed timeout; nothing to validate")
	}
	if partial.Checkpoint == nil {
		t.Fatal("shed partial without a checkpoint")
	}
	if n := srv.Metrics().Counter(MetricJobsShed).Value(); n < 1 {
		t.Errorf("jobs_shed = %d, want ≥ 1", n)
	}

	// Full matrix on the now-idle server (different timeout knobs share
	// the cache key, so bypass it with a distinct tiers setting? No —
	// the first, shed request never cached its partial, so this request
	// computes fresh).
	resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{
		"program": prog, "all": true, "timeoutMs": 60000,
	})
	env = envelopeOf(t, resp, body)
	var full MatrixResult
	if err := json.Unmarshal(env.Result, &full); err != nil {
		t.Fatal(err)
	}
	if !full.Complete {
		t.Fatalf("reference run did not complete: %s", env.Result)
	}

	// Soundness: the partial's positive verdicts must appear in the full
	// result, and a pair the partial claims decided-negative (absent from
	// both relations and undecided) must be absent from the full result.
	pairSet := func(pairs [][2]int) map[[2]int]bool {
		m := map[[2]int]bool{}
		for _, p := range pairs {
			m[p] = true
		}
		return m
	}
	for rel, pairs := range partial.Relations {
		fullSet := pairSet(full.Relations[rel])
		undecided := pairSet(partial.Undecided[rel])
		for _, p := range pairs {
			if !fullSet[p] {
				t.Errorf("%s: partial asserts %v but the full matrix refutes it", rel, p)
			}
		}
		partialSet := pairSet(pairs)
		for _, p := range full.Relations[rel] {
			if !partialSet[p] && !undecided[p] {
				t.Errorf("%s: partial decided %v negative but the full matrix proves it", rel, p)
			}
		}
	}
	if fmt.Sprint(partial.Events) != fmt.Sprint(full.Events) {
		t.Errorf("event universes differ: %v vs %v", partial.Events, full.Events)
	}
}
