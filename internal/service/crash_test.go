package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"eventorder/internal/gen"
	"eventorder/internal/traceio"
)

// TestCrashSoakShort exercises the episodic crash-restart harness end to
// end: repeated mid-traffic power cuts, then a final recovery that must
// account for every acknowledged job.
func TestCrashSoakShort(t *testing.T) {
	progs := []SoakProgram{
		{Name: "figure1", Source: figure1Program(t)},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := RunCrashSoak(ctx, CrashSoakOptions{
		Episodes:       3,
		JobsPerEpisode: 4,
		Server:         Config{Workers: 2},
		Programs:       progs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unexpected) > 0 {
		t.Fatalf("crash soak violations: %v", rep.Unexpected)
	}
	if rep.Accepted == 0 {
		t.Fatal("crash soak accepted no jobs")
	}
	if rep.Done != rep.Accepted {
		t.Errorf("done = %d, accepted = %d: acknowledged work was lost", rep.Done, rep.Accepted)
	}
	if rep.Verified == 0 {
		t.Error("no recovered results were verified against the clean run")
	}
}

const (
	crashHelperEnv      = "EVENTORDER_CRASH_HELPER"
	crashHelperStateEnv = "EVENTORDER_CRASH_STATE"
)

// TestHelperCrashServer is not a test: it is the child process body for
// TestCrashRestartSIGKILL. It boots a durable server on a real state
// directory, submits a heavy async job to itself, reports the job id on
// stdout once the job is running, and then waits to be SIGKILLed.
func TestHelperCrashServer(t *testing.T) {
	if os.Getenv(crashHelperEnv) != "1" {
		t.Skip("helper process body; run via TestCrashRestartSIGKILL")
	}
	stateDir := os.Getenv(crashHelperStateEnv)
	srv, err := New(Config{Workers: 1, StateDir: stateDir})
	if err != nil {
		fmt.Printf("HELPER_ERR boot: %v\n", err)
		os.Exit(1)
	}
	ts := httptest.NewServer(srv.Handler())
	slow, err := gen.Barrier(6)
	if err != nil {
		fmt.Printf("HELPER_ERR gen: %v\n", err)
		os.Exit(1)
	}
	var buf strings.Builder
	if err := traceio.SaveExecution(&buf, slow); err != nil {
		fmt.Printf("HELPER_ERR save: %v\n", err)
		os.Exit(1)
	}
	id := submitAsync(t, ts.URL, "/v1/analyze", map[string]any{
		"execution": json.RawMessage(buf.String()), "all": true, "async": true,
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		sj, _ := srv.store.get(id)
		if state, _, _, _ := sj.snapshot(); state == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			fmt.Println("HELPER_ERR job never ran")
			os.Exit(1)
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("HELPER_JOB %s\n", id)
	// Block until the parent kills the process. The job is mid-search on
	// the worker; nothing here may checkpoint or drain.
	time.Sleep(5 * time.Minute)
}

// TestCrashRestartSIGKILL is the real-process acceptance test: a child
// server on a real on-disk state dir is SIGKILLed mid-heavy-job, and a
// fresh in-process server on the same directory must recover the job to
// completion.
func TestCrashRestartSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec test; skipped in -short")
	}
	stateDir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperCrashServer$", "-test.v")
	cmd.Env = append(os.Environ(), crashHelperEnv+"=1", crashHelperStateEnv+"="+stateDir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var id string
	scanner := bufio.NewScanner(stdout)
	idCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		for scanner.Scan() {
			line := scanner.Text()
			if strings.HasPrefix(line, "HELPER_JOB ") {
				idCh <- strings.TrimPrefix(line, "HELPER_JOB ")
				return
			}
			if strings.HasPrefix(line, "HELPER_ERR") {
				errCh <- fmt.Errorf("%s", line)
				return
			}
		}
		errCh <- fmt.Errorf("helper exited without reporting a job: %v", scanner.Err())
	}()
	select {
	case id = <-idCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(60 * time.Second):
		t.Fatal("helper never reported a running job")
	}

	// SIGKILL: no deferred cleanup, no checkpoint, no journal close.
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	srv, err := New(Config{Workers: 2, StateDir: stateDir})
	if err != nil {
		t.Fatalf("recovery boot: %v", err)
	}
	defer forceStopGraceful(t, srv)
	state, body, errs := awaitJob(t, srv, id, 2*time.Minute)
	if state != JobDone {
		t.Fatalf("job %s after SIGKILL recovery: %s (%s)", id, state, errs)
	}
	if got := relationsOf(t, body); len(got) == 0 {
		t.Error("recovered result has no relations")
	}
	if v := srv.Metrics().Counter(MetricJobsRecovered).Value(); v != 1 {
		t.Errorf("jobs_recovered = %d, want 1", v)
	}
}
