package service

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"eventorder/internal/gen"
	"eventorder/internal/journal"
	"eventorder/internal/vfs"
)

// Durability tests run the server against an in-memory crash-simulating
// filesystem (internal/vfs): "crash" clones the FS and discards every
// byte that was not fsynced, exactly what the machine losing power does
// to a real disk.

const testStateDir = "/state"

func durableConfig(fsys vfs.FS) Config {
	return Config{
		Workers:  2,
		StateDir: testStateDir,
		StateFS:  fsys,
	}
}

func newDurableServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		ts.Close()
	})
	return srv, ts
}

// submitAsync posts an async request and returns the job id.
func submitAsync(t *testing.T, base, path string, req any) string {
	t.Helper()
	resp, body := postJSON(t, base+path, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	return jr.ID
}

// awaitJob polls the job store directly until the job is terminal.
func awaitJob(t *testing.T, srv *Server, id string, timeout time.Duration) (JobState, []byte, string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		sj, ok := srv.store.get(id)
		if !ok {
			t.Fatalf("job %s not in store", id)
		}
		state, body, errs, _ := sj.snapshot()
		if state == JobDone || state == JobFailed {
			return state, body, errs
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, state)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// relationsOf extracts the proven-pairs map from a matrix result body.
func relationsOf(t *testing.T, body []byte) map[string][][2]int {
	t.Helper()
	var m MatrixResult
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("bad matrix body %s: %v", body, err)
	}
	if !m.Complete {
		t.Fatalf("matrix result incomplete (cause %q)", m.Cause)
	}
	return m.Relations
}

func sameRelations(a, b map[string][][2]int) bool {
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	return bytes.Equal(aj, bj)
}

// crashImage snapshots the durable state of fs as a power-loss survivor
// would see it, without disturbing the (possibly still running) server.
func crashImage(fs *vfs.MemFS) *vfs.MemFS {
	img := fs.Clone()
	img.Crash()
	return img
}

// forceStop shuts a server down with an already-expired context: every
// in-flight job is canceled at its next poll, mimicking a kill.
func forceStop(srv *Server) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = srv.Shutdown(ctx)
}

// TestDurableRestartServesPersistedResults is the tentpole happy path: an
// async job's result and the result cache survive a graceful restart
// byte-for-byte, under the original job id.
func TestDurableRestartServesPersistedResults(t *testing.T) {
	fs := vfs.NewMemFS()
	srv, ts := newDurableServer(t, durableConfig(fs))
	req := map[string]any{"program": figure1Program(t), "all": true, "async": true}
	id := submitAsync(t, ts.URL, "/v1/analyze", req)
	state, body, errs := awaitJob(t, srv, id, 30*time.Second)
	if state != JobDone {
		t.Fatalf("job %s: %s (%s)", id, state, errs)
	}
	// Seed the cache durably with a synchronous matrix request too.
	if resp, b := postJSON(t, ts.URL+"/v1/analyze", map[string]any{"program": figure1Program(t), "all": true}); resp.StatusCode != http.StatusOK {
		t.Fatalf("sync analyze: %d %s", resp.StatusCode, b)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts.Close()

	srv2, ts2 := newDurableServer(t, durableConfig(fs))
	var jr JobResponse
	if resp := getJSON(t, ts2.URL+"/v1/jobs/"+id, &jr); resp.StatusCode != http.StatusOK {
		t.Fatalf("job lookup after restart: %d", resp.StatusCode)
	}
	if jr.Status != JobDone {
		t.Fatalf("restarted job %s: %s (%s)", id, jr.Status, jr.Error)
	}
	if !bytes.Equal(jr.Result, body) {
		t.Errorf("persisted result differs from original:\n  was  %s\n  now  %s", body, jr.Result)
	}
	// The rehydrated cache must serve the sync result without re-running.
	resp, b := postJSON(t, ts2.URL+"/v1/analyze", map[string]any{"program": figure1Program(t), "all": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart analyze: %d %s", resp.StatusCode, b)
	}
	if env := decodeEnvelope(t, b); !env.Cached {
		t.Error("post-restart matrix request missed the rehydrated cache")
	}
	if v := srv2.Metrics().Counter(MetricStoreRehydrated).Value(); v == 0 {
		t.Error("store_rehydrated = 0 after restart with persisted cache entries")
	}
	if v := srv2.Metrics().Counter(MetricJournalReplayRecords).Value(); v == 0 {
		t.Error("journal_replay_records = 0 after replaying a non-empty journal")
	}
}

// TestCrashMidJobRecoversAndCompletes kills the filesystem while a heavy
// async job is mid-search; the reboot must re-run the accepted job to a
// terminal state with the same verdicts a clean run produces.
func TestCrashMidJobRecoversAndCompletes(t *testing.T) {
	slow, err := gen.Barrier(6)
	if err != nil {
		t.Fatal(err)
	}
	// Reference verdicts from a clean, non-durable run.
	_, ref := newTestServer(t, Config{Workers: 2})
	resp, refBody := postJSON(t, ref.URL+"/v1/analyze", map[string]any{"execution": executionJSON(t, slow), "all": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference run: %d %s", resp.StatusCode, refBody)
	}
	refRel := relationsOf(t, decodeEnvelope(t, refBody).Result)

	fs := vfs.NewMemFS()
	cfg := durableConfig(fs)
	cfg.Workers = 1
	srv, ts := newDurableServer(t, cfg)
	id := submitAsync(t, ts.URL, "/v1/analyze", map[string]any{"execution": executionJSON(t, slow), "all": true, "async": true})

	// Wait until the job is journaled as running, then pull the plug.
	deadline := time.Now().Add(10 * time.Second)
	for {
		sj, ok := srv.store.get(id)
		if !ok {
			t.Fatalf("job %s not in store", id)
		}
		if state, _, _, _ := sj.snapshot(); state == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}
	img := crashImage(fs)
	forceStop(srv)
	ts.Close()

	cfg2 := durableConfig(img)
	srv2, _ := newDurableServer(t, cfg2)
	state, body, errs := awaitJob(t, srv2, id, 60*time.Second)
	if state != JobDone {
		t.Fatalf("recovered job %s: %s (%s)", id, state, errs)
	}
	if got := relationsOf(t, body); !sameRelations(got, refRel) {
		t.Errorf("recovered verdicts differ from the clean run")
	}
	if v := srv2.Metrics().Counter(MetricJobsRecovered).Value(); v != 1 {
		t.Errorf("jobs_recovered = %d, want 1", v)
	}
}

// journalFrameBoundaries parses a WAL segment image and returns every
// frame boundary offset (including the header boundary and EOF).
func journalFrameBoundaries(t *testing.T, seg []byte) []int64 {
	t.Helper()
	if len(seg) < 8 {
		t.Fatalf("segment too short: %d bytes", len(seg))
	}
	bounds := []int64{8}
	off := int64(8)
	for off < int64(len(seg)) {
		if off+8 > int64(len(seg)) {
			break
		}
		n := int64(binary.LittleEndian.Uint32(seg[off : off+4]))
		off += 8 + n
		if off > int64(len(seg)) {
			break
		}
		bounds = append(bounds, off)
	}
	return bounds
}

// TestCrashBoundarySweep is the acceptance sweep: a journal cut at EVERY
// record boundary (and mid-record) must boot, and every job whose
// "accepted" record survived the cut must reach a terminal state.
func TestCrashBoundarySweep(t *testing.T) {
	fs := vfs.NewMemFS()
	srv, ts := newDurableServer(t, durableConfig(fs))
	prog := figure1Program(t)
	var ids []string
	// Distinct relations per job: identical requests would be served from
	// the result cache instead of minting fresh journaled jobs.
	for _, rel := range []string{"mhb", "chb", "mow", "cow"} {
		req := map[string]any{"program": prog, "rel": rel, "a": "lp", "b": "rp", "async": true}
		ids = append(ids, submitAsync(t, ts.URL, "/v1/analyze", req))
	}
	for _, id := range ids {
		if state, _, errs := awaitJob(t, srv, id, 30*time.Second); state != JobDone {
			t.Fatalf("seed job %s: %s (%s)", id, state, errs)
		}
	}
	img := crashImage(fs)
	forceStop(srv)
	ts.Close()

	segPath := liveSegmentPath(t, img)
	seg, err := vfs.ReadFile(img, segPath)
	if err != nil {
		t.Fatalf("reading journal image: %v", err)
	}
	bounds := journalFrameBoundaries(t, seg)
	if len(bounds) < 8 {
		t.Fatalf("expected ≥8 frame boundaries (4 jobs × ≥2 records), got %d", len(bounds))
	}
	// Cut at every boundary plus mid-frame (boundary+3), to cover torn
	// records as well as torn frame headers.
	var cuts []int64
	for _, b := range bounds {
		cuts = append(cuts, b)
		if b+3 < int64(len(seg)) {
			cuts = append(cuts, b+3)
		}
	}
	for _, cut := range cuts {
		cut := cut
		t.Run(fmt.Sprintf("cut@%d", cut), func(t *testing.T) {
			cutFS := img.Clone()
			f, err := cutFS.OpenFile(segPath, os.O_RDWR, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.Truncate(cut); err != nil {
				t.Fatal(err)
			}
			f.Close()
			srv2, err := New(durableConfig(cutFS))
			if err != nil {
				t.Fatalf("boot after cut at %d: %v", cut, err)
			}
			defer forceStopGraceful(t, srv2)
			srv2.recoveryWG.Wait()
			for _, id := range ids {
				sj, ok := srv2.store.get(id)
				if !ok {
					continue // accepted record fell past the cut: never acknowledged... recoverable loss is only unacknowledged work
				}
				deadline := time.Now().Add(30 * time.Second)
				for {
					state, _, errs := func() (JobState, []byte, string) {
						s, b, e, _ := sj.snapshot()
						return s, b, e
					}()
					if state == JobDone {
						break
					}
					if state == JobFailed {
						t.Fatalf("job %s failed after cut at %d: %s", id, cut, errs)
					}
					if time.Now().After(deadline) {
						t.Fatalf("job %s stuck in %s after cut at %d", id, state, cut)
					}
					time.Sleep(2 * time.Millisecond)
				}
			}
		})
	}
}

// liveSegmentPath finds the single live WAL segment in a state image.
func liveSegmentPath(t *testing.T, fsys vfs.FS) string {
	t.Helper()
	jdir := vfs.Join(testStateDir, "journal")
	entries, err := fsys.ReadDir(jdir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".wal") {
			segs = append(segs, vfs.Join(jdir, e.Name()))
		}
	}
	if len(segs) != 1 {
		t.Fatalf("expected exactly one live segment, got %v", segs)
	}
	return segs[0]
}

func forceStopGraceful(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
}

// TestRecoveryEmptyStateDir boots durability on a completely fresh
// filesystem: no journal, no blobs, no records — and still serves.
func TestRecoveryEmptyStateDir(t *testing.T) {
	fs := vfs.NewMemFS()
	srv, ts := newDurableServer(t, durableConfig(fs))
	if v := srv.Metrics().Counter(MetricJournalReplayRecords).Value(); v != 0 {
		t.Errorf("journal_replay_records = %d on empty state dir", v)
	}
	if v := srv.Metrics().Counter(MetricJobsRecovered).Value(); v != 0 {
		t.Errorf("jobs_recovered = %d on empty state dir", v)
	}
	id := submitAsync(t, ts.URL, "/v1/analyze", map[string]any{"program": figure1Program(t), "rel": "mhb", "a": "lp", "b": "rp", "async": true})
	if state, _, errs := awaitJob(t, srv, id, 30*time.Second); state != JobDone {
		t.Fatalf("job on fresh state dir: %s (%s)", state, errs)
	}
}

// TestRecoveryZeroLengthSegment: a crash can leave a created-but-unsynced
// segment as a zero-length file; boot must skip it, not choke on it.
func TestRecoveryZeroLengthSegment(t *testing.T) {
	fs := vfs.NewMemFS()
	jdir := vfs.Join(testStateDir, "journal")
	if err := fs.MkdirAll(jdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, vfs.Join(jdir, "seg-00000000.wal"), nil); err != nil {
		t.Fatal(err)
	}
	srv, ts := newDurableServer(t, durableConfig(fs))
	if v := srv.Metrics().Counter(MetricJournalReplayRecords).Value(); v != 0 {
		t.Errorf("journal_replay_records = %d, want 0", v)
	}
	id := submitAsync(t, ts.URL, "/v1/analyze", map[string]any{"program": figure1Program(t), "rel": "mhb", "a": "lp", "b": "rp", "async": true})
	if state, _, errs := awaitJob(t, srv, id, 30*time.Second); state != JobDone {
		t.Fatalf("job after zero-length segment: %s (%s)", state, errs)
	}
}

// TestRecoveryDuplicateJobIDs: a crash between compaction's rewrite and
// its deletes can leave the same job's records in two segments. Replay
// must treat the duplicates as idempotent — one job, re-enqueued once.
func TestRecoveryDuplicateJobIDs(t *testing.T) {
	fs := vfs.NewMemFS()
	jdir := vfs.Join(testStateDir, "journal")
	jr, err := journal.Open(jdir, journal.Options{FS: fs, MaxSegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := json.Marshal(map[string]any{"program": figure1Program(t), "rel": "mhb", "a": "lp", "b": "rp", "async": true})
	acc, _ := json.Marshal(jobRecord{T: "accepted", ID: "j000007", Ep: "analyze", Req: req})
	run, _ := json.Marshal(jobRecord{T: "running", ID: "j000007"})
	// 64-byte segments force every append into its own segment, so the
	// duplicate accepted records land in different files.
	for _, rec := range [][]byte{acc, run, acc} {
		if err := jr.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	srv, _ := newDurableServer(t, durableConfig(fs))
	srv.recoveryWG.Wait()
	if v := srv.Metrics().Counter(MetricJournalReplayRecords).Value(); v != 3 {
		t.Errorf("journal_replay_records = %d, want 3", v)
	}
	state, _, errs := awaitJob(t, srv, "j000007", 30*time.Second)
	if state != JobDone {
		t.Fatalf("duplicated job: %s (%s)", state, errs)
	}
	if v := srv.Metrics().Counter(MetricJobsRecovered).Value(); v != 1 {
		t.Errorf("jobs_recovered = %d, want 1 (duplicates must collapse)", v)
	}
	// A fresh submission must mint an id past the recovered one.
	sj := srv.store.add()
	if sj.id <= "j000007" {
		t.Errorf("fresh id %s not past recovered j000007", sj.id)
	}
}

// TestDrainCheckpointsInflightJob: graceful shutdown checkpoints a
// running heavy job instead of discarding its work; the next boot resumes
// from the checkpoint and finishes with verdicts identical to a clean run.
func TestDrainCheckpointsInflightJob(t *testing.T) {
	slow, err := gen.Barrier(6)
	if err != nil {
		t.Fatal(err)
	}
	_, ref := newTestServer(t, Config{Workers: 2})
	resp, refBody := postJSON(t, ref.URL+"/v1/analyze", map[string]any{"execution": executionJSON(t, slow), "all": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference run: %d %s", resp.StatusCode, refBody)
	}
	refRel := relationsOf(t, decodeEnvelope(t, refBody).Result)

	fs := vfs.NewMemFS()
	cfg := durableConfig(fs)
	cfg.Workers = 1
	cfg.DrainCheckpoint = 30 * time.Millisecond
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	id := submitAsync(t, ts.URL, "/v1/analyze", map[string]any{"execution": executionJSON(t, slow), "all": true, "async": true})
	deadline := time.Now().Add(10 * time.Second)
	for {
		sj, _ := srv.store.get(id)
		if state, _, _, _ := sj.snapshot(); state == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()
	ckpted := srv.Metrics().Counter(MetricJobsDrainCheckpointed).Value()
	if ckpted != 1 {
		// The job may legitimately have finished before the grace struck
		// on a fast machine; only proceed with the resume assertions when
		// the drain actually clipped it.
		t.Skipf("job finished before the drain checkpoint (jobs_drain_checkpointed = %d)", ckpted)
	}

	srv2, _ := newDurableServer(t, durableConfig(fs))
	state, body, errs := awaitJob(t, srv2, id, 60*time.Second)
	if state != JobDone {
		t.Fatalf("resumed job: %s (%s)", state, errs)
	}
	if got := relationsOf(t, body); !sameRelations(got, refRel) {
		t.Errorf("resumed verdicts differ from the clean run")
	}
	if v := srv2.Metrics().Counter(MetricJobsRecovered).Value(); v != 1 {
		t.Errorf("jobs_recovered = %d, want 1", v)
	}
	// The resumed run must have continued from the checkpoint, not
	// restarted: the journal carried a "checkpointed" record for it.
	if v := srv2.Metrics().Counter(MetricAnalyzeResumed).Value(); v != 1 {
		t.Errorf("analyze_resumed = %d, want 1 (resume from drain checkpoint)", v)
	}
}

// TestWedgedJournalRefusesAsync: once an append cannot be made durable,
// async admission answers 503 — the server never acknowledges work it
// cannot recover — while synchronous requests keep flowing.
func TestWedgedJournalRefusesAsync(t *testing.T) {
	fs := vfs.NewMemFS()
	srv, ts := newDurableServer(t, durableConfig(fs))
	_ = srv
	fs.SetFault(vfs.FaultPlan{FailSyncs: 1})
	req := map[string]any{"program": figure1Program(t), "rel": "mhb", "a": "lp", "b": "rp", "async": true}
	resp, body := postJSON(t, ts.URL+"/v1/analyze", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("async submit on failing disk: %d %s, want 503", resp.StatusCode, body)
	}
	// The journal is wedged now: later async submissions stay refused
	// even though the disk "recovered".
	resp, body = postJSON(t, ts.URL+"/v1/analyze", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("async submit after wedge: %d %s, want 503", resp.StatusCode, body)
	}
	// Synchronous requests never depended on the journal.
	sync := map[string]any{"program": figure1Program(t), "rel": "mhb", "a": "lp", "b": "rp"}
	if resp, body := postJSON(t, ts.URL+"/v1/analyze", sync); resp.StatusCode != http.StatusOK {
		t.Fatalf("sync request on wedged journal: %d %s, want 200", resp.StatusCode, body)
	}
}

// TestResumeRejects422 is the hardened-checkpoint surface test: garbage,
// oversized, and legacy resume tokens come back as 422, never 500.
func TestResumeRejects422(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []string{
		"!!!not base64!!!",
		"aGVsbG8gd29ybGQ=", // valid base64, not a checkpoint
	}
	for _, resume := range cases {
		req := map[string]any{"program": figure1Program(t), "all": true, "resume": resume}
		resp, body := postJSON(t, ts.URL+"/v1/analyze", req)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("resume %q: status %d (%s), want 422", resume, resp.StatusCode, body)
		}
	}
}
