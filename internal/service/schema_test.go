package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestMetricsSchemaGolden compares the /metrics name inventory against a
// golden file. Dashboards and alerts key on these names; a rename or
// disappearance must show up as a reviewed diff, not as a silently empty
// graph. The server preregisters every metric it can emit, so the
// inventory is a property of the build — a short request sequence only
// confirms scraping works end to end. Regenerate with
// UPDATE_METRICS_SCHEMA=1 go test -run TestMetricsSchemaGolden ./internal/service/.
func TestMetricsSchemaGolden(t *testing.T) {
	handshake := readTestdataProgram(t, "handshake.evo")
	figure1 := readTestdataProgram(t, "figure1.evo")
	_, ts := newTestServer(t, Config{Workers: 1, FastWorkers: 1, CacheBytes: 1 << 20})

	// Exercise one fast-lane, one heavy, and one cached request plus the
	// two GET endpoints so the scrape reflects real traffic.
	postJSON(t, ts.URL+"/v1/analyze", map[string]any{"program": handshake, "all": true})
	postJSON(t, ts.URL+"/v1/analyze", map[string]any{"program": figure1, "all": true})
	postJSON(t, ts.URL+"/v1/analyze", map[string]any{"program": figure1, "all": true})
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}

	var lines []string
	for name := range snap.Counters {
		lines = append(lines, "counter "+name)
	}
	for name := range snap.Gauges {
		lines = append(lines, "gauge "+name)
	}
	for name, h := range snap.Histograms {
		lines = append(lines, fmt.Sprintf("histogram %s buckets=%d", name, len(h.Bounds)))
	}
	sort.Strings(lines)
	got := strings.Join(lines, "\n") + "\n"

	// Spot-check the families the load-shedding contract is phrased over
	// before diffing, so a failure names the missing piece directly.
	for _, want := range []string{
		"histogram " + MetricQueueWait + "_" + LaneFast,
		"histogram " + MetricQueueWait + "_" + LaneHeavy,
		"histogram " + MetricLatency + "_analyze",
		"histogram " + MetricExploredNodes,
		"counter " + MetricJobsShed,
		"counter " + MetricJobsThrottled,
		"gauge " + MetricShedMode,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("scrape is missing %q", want)
		}
	}

	goldenPath := filepath.Join("testdata", "metrics_schema.golden")
	if os.Getenv("UPDATE_METRICS_SCHEMA") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_METRICS_SCHEMA=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("metrics schema drifted from %s.\nGot:\n%s\nWant:\n%s\nIf the change is intentional, regenerate with UPDATE_METRICS_SCHEMA=1 and review the diff.",
			goldenPath, got, want)
	}
}
