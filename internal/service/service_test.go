package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"

	"eventorder/internal/core"
	"eventorder/internal/gen"
	"eventorder/internal/interp"
	"eventorder/internal/lang"
	"eventorder/internal/model"
	"eventorder/internal/traceio"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		ts.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func figure1Program(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("../../testdata/figure1.evo")
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

func executionJSON(t *testing.T, x *model.Execution) json.RawMessage {
	t.Helper()
	var buf bytes.Buffer
	if err := traceio.SaveExecution(&buf, x); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func decodeEnvelope(t *testing.T, body []byte) Envelope {
	t.Helper()
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("bad envelope %s: %v", body, err)
	}
	return env
}

// TestAnalyzeFigure1Pair covers the acceptance path: posting the paper's
// Figure 1 program yields MHB(lp, rp) = true — the shared-data dependence
// orders the two posts — and the identical repeat is served from cache.
func TestAnalyzeFigure1Pair(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	req := map[string]any{"program": figure1Program(t), "rel": "mhb", "a": "lp", "b": "rp"}

	resp, body := postJSON(t, ts.URL+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	env := decodeEnvelope(t, body)
	if env.Cached {
		t.Error("first request claims cached")
	}
	var pair PairResult
	if err := json.Unmarshal(env.Result, &pair); err != nil {
		t.Fatal(err)
	}
	if pair.Verdict != VerdictTrue || pair.Rel != "MHB" {
		t.Errorf("lp MHB rp = %v (rel %q), want true", pair.Verdict, pair.Rel)
	}
	if env.SchemaVersion != SchemaVersion {
		t.Errorf("schemaVersion = %d, want %d", env.SchemaVersion, SchemaVersion)
	}
	if pair.Nodes <= 0 {
		t.Errorf("no search effort reported: %+v", pair)
	}

	resp, body = postJSON(t, ts.URL+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp.StatusCode, body)
	}
	env2 := decodeEnvelope(t, body)
	if !env2.Cached {
		t.Error("identical repeat not served from cache")
	}
	if !bytes.Equal(env.Result, env2.Result) {
		t.Errorf("cached result differs:\nfirst:  %s\nsecond: %s", env.Result, env2.Result)
	}
	if hits := srv.Metrics().Counter(MetricCacheHits).Value(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
}

// TestCacheContentAddressing submits the same execution twice in different
// representations — once as a program (run to a trace under the default
// seed) and once as that exact serialized trace — and requires the second
// to hit the cache: the key is the execution's content, not the request
// bytes.
func TestCacheContentAddressing(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	prog := figure1Program(t)
	parsed, err := lang.Parse(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.RunAvoidingDeadlock(parsed, 64, 1)
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{"program": prog, "rel": "MHB", "a": "lp", "b": "rp"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("program submit: status %d: %s", resp.StatusCode, body)
	}
	if decodeEnvelope(t, body).Cached {
		t.Fatal("first submission cached")
	}

	resp, body = postJSON(t, ts.URL+"/v1/analyze", map[string]any{
		"execution": executionJSON(t, res.X), "rel": "MHB", "a": "lp", "b": "rp",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace submit: status %d: %s", resp.StatusCode, body)
	}
	if !decodeEnvelope(t, body).Cached {
		t.Error("trace submission of the same execution missed the cache")
	}
}

// matrixFromResponse normalizes a MatrixResult's pairs for comparison.
func matrixFromResponse(m MatrixResult, rel string) [][2]int {
	pairs := append([][2]int(nil), m.Relations[rel]...)
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return pairs
}

// TestMatrixMatchesDirectCore requires the served full six-relation matrix
// to equal a direct core computation on the same execution.
func TestMatrixMatchesDirectCore(t *testing.T) {
	x, err := gen.Mutex(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{"execution": executionJSON(t, x), "all": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var m MatrixResult
	if err := json.Unmarshal(decodeEnvelope(t, body).Result, &m); err != nil {
		t.Fatal(err)
	}

	an, err := core.New(x, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := an.AllRelations(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Relations) != len(core.AllRelKinds) {
		t.Fatalf("served %d relations, want %d", len(m.Relations), len(core.AllRelKinds))
	}
	for kind, rel := range want {
		wantPairs := [][2]int{}
		for _, p := range rel.Pairs() {
			wantPairs = append(wantPairs, [2]int{int(p[0]), int(p[1])})
		}
		sort.Slice(wantPairs, func(i, j int) bool {
			if wantPairs[i][0] != wantPairs[j][0] {
				return wantPairs[i][0] < wantPairs[j][0]
			}
			return wantPairs[i][1] < wantPairs[j][1]
		})
		got := matrixFromResponse(m, kind.String())
		if fmt.Sprint(got) != fmt.Sprint(wantPairs) {
			t.Errorf("%v: served %v, direct core %v", kind, got, wantPairs)
		}
	}
	for i := 0; i < x.NumEvents(); i++ {
		if m.Events[i] != x.EventName(model.EventID(i)) {
			t.Errorf("event %d named %q, want %q", i, m.Events[i], x.EventName(model.EventID(i)))
		}
	}
}

// TestAnalyzeWorkersAndBudgetKnobs covers the matrix-path request knobs:
// out-of-range values are clamped by core.MatrixOpts.Normalize rather
// than rejected (the knobs are hints, not semantics), a large workers ask
// is clamped and returns verdicts identical to the default, and the cache
// is shared across worker counts (the knob is not part of the key).
func TestAnalyzeWorkersAndBudgetKnobs(t *testing.T) {
	x, err := gen.Mutex(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{Workers: 1, MaxMatrixWorkers: 2})
	exec := executionJSON(t, x)

	resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{"execution": exec, "all": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default: status %d: %s", resp.StatusCode, body)
	}
	base := decodeEnvelope(t, body)

	// Out-of-range knobs are clamped, not rejected; the results are served
	// from the cache since neither knob is part of the key.
	for _, clamped := range []map[string]any{
		{"execution": exec, "all": true, "workers": -1},
		{"execution": exec, "all": true, "budget": -5},
		{"execution": exec, "all": true, "workers": 1000},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/analyze", clamped)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%v: status %d, want 200: %s", clamped, resp.StatusCode, body)
		}
		env := decodeEnvelope(t, body)
		if !env.Cached {
			t.Errorf("%v: knob-only variation missed the cache", clamped)
		}
		if !bytes.Equal(base.Result, env.Result) {
			t.Errorf("%v: result differs from default:\n%s\nvs\n%s", clamped, env.Result, base.Result)
		}
	}

	// A tiny budget on an uncached query yields an anytime partial: 200
	// with "complete": false, a cause of "budget", and a checkpoint.
	resp, body = postJSON(t, ts.URL+"/v1/analyze", map[string]any{
		"execution": exec, "all": true, "budget": 1, "ignoreData": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budget=1: status %d, want 200 partial: %s", resp.StatusCode, body)
	}
	var m MatrixResult
	if err := json.Unmarshal(decodeEnvelope(t, body).Result, &m); err != nil {
		t.Fatal(err)
	}
	if m.Complete {
		t.Errorf("budget=1 matrix claims to be complete: %s", body)
	}
	if m.Cause != "budget" {
		t.Errorf("cause = %q, want \"budget\"", m.Cause)
	}
	if m.Checkpoint == nil {
		t.Error("partial matrix carries no checkpoint")
	}
	if n := srv.Metrics().Counter(MetricAnalyzePartial).Value(); n < 1 {
		t.Errorf("analyze_partial = %d, want ≥ 1", n)
	}
}

// TestAsyncSubmitPoll exercises the job queue's async path: submit,
// poll until done, and check the matrix against direct computation.
func TestAsyncSubmitPoll(t *testing.T) {
	x, err := gen.Pipeline(3)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{
		"execution": executionJSON(t, x), "rel": "MHB", "all": true, "async": true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.ID == "" {
		t.Fatalf("no job id in %s", body)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		getJSON(t, ts.URL+"/v1/jobs/"+jr.ID, &jr)
		if jr.Status == JobDone || jr.Status == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", jr.ID, jr.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if jr.Status != JobDone {
		t.Fatalf("job failed: %s", jr.Error)
	}
	var m MatrixResult
	if err := json.Unmarshal(jr.Result, &m); err != nil {
		t.Fatal(err)
	}
	an, err := core.New(x, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := an.Relation(context.Background(), core.RelMHB)
	if err != nil {
		t.Fatal(err)
	}
	got := matrixFromResponse(m, "MHB")
	if len(got) != len(want.Pairs()) {
		t.Errorf("async MHB matrix has %d pairs, direct core %d", len(got), len(want.Pairs()))
	}

	// The async result must now satisfy synchronous requests from cache.
	resp, body = postJSON(t, ts.URL+"/v1/analyze", map[string]any{
		"execution": executionJSON(t, x), "rel": "MHB", "all": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !decodeEnvelope(t, body).Cached {
		t.Error("sync request after async completion missed the cache")
	}
}

// waitForIdle polls until no job is queued or running.
func waitForIdle(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if srv.Metrics().Gauge(MetricQueueDepth).Value() == 0 &&
			srv.Metrics().Gauge(MetricJobsRunning).Value() == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never went idle: depth=%d running=%d",
				srv.Metrics().Gauge(MetricQueueDepth).Value(),
				srv.Metrics().Gauge(MetricJobsRunning).Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDeadlinePartialFreesWorker posts a large instance with a 1ms
// deadline: the request must answer 200 with a partial anytime result
// (v1 answered 504 here), the interrupted search must actually stop
// (queue depth and running gauges return to 0), and the freed worker must
// serve the next request. Resuming from the partial's checkpoint with no
// deadline must then complete the analysis.
func TestDeadlinePartialFreesWorker(t *testing.T) {
	// Barrier has a genuinely large reachable state space, so even the
	// batch matrix engine needs hundreds of milliseconds — the per-pair
	// engine's hard mutex instances complete in microseconds there.
	big, err := gen.Barrier(7)
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{
		"execution": executionJSON(t, big), "all": true, "timeoutMs": 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 partial: %s", resp.StatusCode, body)
	}
	var partial MatrixResult
	if err := json.Unmarshal(decodeEnvelope(t, body).Result, &partial); err != nil {
		t.Fatal(err)
	}
	if partial.Complete {
		t.Fatal("1ms-deadline matrix claims to be complete")
	}
	if partial.Checkpoint == nil {
		t.Fatal("partial matrix carries no checkpoint")
	}
	if partial.Cause != "deadline" && partial.Cause != "canceled" {
		t.Errorf("cause = %q, want deadline or canceled", partial.Cause)
	}
	waitForIdle(t, srv)
	if n := srv.Metrics().Counter(MetricAnalyzePartial).Value(); n < 1 {
		t.Errorf("analyze_partial = %d, want ≥ 1", n)
	}

	// The single worker must be free for new work.
	resp, body = postJSON(t, ts.URL+"/v1/analyze", map[string]any{
		"program": figure1Program(t), "rel": "MHB", "a": "lp", "b": "rp",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-deadline request: status %d: %s", resp.StatusCode, body)
	}

	// Continuing from the checkpoint without a deadline finishes the job.
	resp, body = postJSON(t, ts.URL+"/v1/analyze", map[string]any{
		"execution": executionJSON(t, big), "all": true, "resume": partial.Checkpoint,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume: status %d: %s", resp.StatusCode, body)
	}
	env := decodeEnvelope(t, body)
	if env.Cached {
		t.Error("resume request was served from cache")
	}
	var full MatrixResult
	if err := json.Unmarshal(env.Result, &full); err != nil {
		t.Fatal(err)
	}
	if !full.Complete {
		t.Fatalf("resumed matrix still incomplete: %d/%d pairs", full.DecidedPairs, full.TotalPairs)
	}
	if full.DecidedPairs != full.TotalPairs {
		t.Errorf("complete matrix decided %d of %d pairs", full.DecidedPairs, full.TotalPairs)
	}
	if n := srv.Metrics().Counter(MetricAnalyzeResumed).Value(); n < 1 {
		t.Errorf("analyze_resumed = %d, want ≥ 1", n)
	}

	// The verdicts the partial decided must agree with the full analysis.
	for rel, pairs := range partial.Relations {
		fullSet := map[[2]int]bool{}
		for _, p := range full.Relations[rel] {
			fullSet[p] = true
		}
		for _, p := range pairs {
			if !fullSet[p] {
				t.Errorf("partial decided %s%v, absent from full analysis", rel, p)
			}
		}
	}
}

// TestGracefulShutdownDrain starts a slow job, begins shutdown, and checks
// that (1) new submissions are rejected with 503, (2) the in-flight job
// completes with 200, (3) Shutdown returns once drained.
func TestGracefulShutdownDrain(t *testing.T) {
	slow, err := gen.Barrier(6)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type result struct {
		status int
		body   []byte
	}
	inflight := make(chan result, 1)
	go func() {
		b, _ := json.Marshal(map[string]any{"execution": executionJSON(t, slow), "all": true})
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(b))
		if err != nil {
			inflight <- result{status: -1}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		inflight <- result{status: resp.StatusCode, body: buf.Bytes()}
	}()

	// Wait until the job is actually running.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Metrics().Gauge(MetricJobsRunning).Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// New submissions during the drain must be rejected with 503.
	rejected := false
	for i := 0; i < 100; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/analyze", map[string]any{
			"program": figure1Program(t), "rel": "MHB", "a": "lp", "b": "rp",
		})
		if resp.StatusCode == http.StatusServiceUnavailable {
			rejected = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !rejected {
		t.Error("no 503 for submissions during drain")
	}

	res := <-inflight
	if res.status != http.StatusOK {
		t.Errorf("in-flight job during drain: status %d: %s", res.status, res.body)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if n := srv.Metrics().Counter(MetricJobsRejected).Value(); n < 1 {
		t.Errorf("jobs_rejected = %d, want ≥ 1", n)
	}
}

// TestQueueFullRejects fills the single-slot queue behind a busy worker
// and requires admission control to answer 429 with a Retry-After hint.
// The fast lane is disabled so every submission contends for the one
// heavy queue slot.
func TestQueueFullRejects(t *testing.T) {
	slow, err := gen.Barrier(6)
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, DisableFastLane: true})
	slowReq := func(seed int) map[string]any {
		return map[string]any{
			"execution": executionJSON(t, slow), "all": true, "async": true,
			"timeoutMs": 10000, "ignoreData": seed%2 == 1, // vary the key to dodge the cache
		}
	}
	resp, body := postJSON(t, ts.URL+"/v1/analyze", slowReq(0))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d: %s", resp.StatusCode, body)
	}
	// Wait for the worker to pick it up so the queue slot is free again.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Metrics().Gauge(MetricJobsRunning).Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, body = postJSON(t, ts.URL+"/v1/analyze", slowReq(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d: %s", resp.StatusCode, body)
	}
	// Worker busy + queue slot taken → the third submission must throttle.
	resp, body = postJSON(t, ts.URL+"/v1/races", map[string]any{
		"execution": executionJSON(t, slow), "async": true, "timeoutMs": 10000,
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After hint")
	}
	if n := srv.Metrics().Counter(MetricJobsRejected).Value(); n < 1 {
		t.Errorf("jobs_rejected = %d, want ≥ 1", n)
	}
	if n := srv.Metrics().Counter(MetricJobsThrottled).Value(); n < 1 {
		t.Errorf("jobs_throttled = %d, want ≥ 1", n)
	}
}

// TestRacesEndpoint checks the exact detector's verdict against a direct
// race.Detect call by way of known seeded-race structure.
func TestRacesEndpoint(t *testing.T) {
	x, _, err := gen.SeededRaces(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/races", map[string]any{"execution": executionJSON(t, x)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr RacesResult
	if err := json.Unmarshal(decodeEnvelope(t, body).Result, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Candidates) == 0 {
		t.Fatal("no candidates on a seeded-race workload")
	}
	if len(rr.Exact) == 0 {
		t.Error("seeded unguarded race not confirmed by exact detector")
	}
	for _, p := range rr.Exact {
		if p.Var == "" || p.AName == "" || p.BName == "" {
			t.Errorf("race pair missing names: %+v", p)
		}
	}
}

// TestWitnessEndpoint requires a CCW witness schedule whose steps
// interleave the two events' begin/end boundaries.
func TestWitnessEndpoint(t *testing.T) {
	x, _, err := gen.SeededRaces(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Find any exact race to demonstrate.
	labels := x.Labels()
	if len(labels) < 2 {
		t.Fatalf("expected labeled events, have %v", labels)
	}
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/witness", map[string]any{
		"execution": executionJSON(t, x), "rel": "CCW", "a": labels[0], "b": labels[1],
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var wr WitnessResult
	if err := json.Unmarshal(decodeEnvelope(t, body).Result, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Verdict == VerdictTrue && len(wr.Steps) == 0 {
		t.Error("holding could-relation came without a schedule")
	}
}

// TestBadRequests covers input validation statuses.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		path string
		body any
		want int
	}{
		{"no source", "/v1/analyze", map[string]any{"rel": "MHB"}, http.StatusBadRequest},
		{"both sources", "/v1/analyze", map[string]any{"program": "proc main { }", "execution": map[string]any{}}, http.StatusBadRequest},
		{"bad relation", "/v1/analyze", map[string]any{"program": figure1Program(t), "rel": "XXX", "a": "lp", "b": "rp"}, http.StatusBadRequest},
		{"unknown label", "/v1/analyze", map[string]any{"program": figure1Program(t), "rel": "MHB", "a": "lp", "b": "nope"}, http.StatusBadRequest},
		{"pair without b", "/v1/analyze", map[string]any{"program": figure1Program(t), "rel": "MHB", "a": "lp"}, http.StatusBadRequest},
		{"same event twice", "/v1/analyze", map[string]any{"program": figure1Program(t), "rel": "MHB", "a": "lp", "b": "lp"}, http.StatusBadRequest},
		{"parse error", "/v1/analyze", map[string]any{"program": "proc {{{"}, http.StatusBadRequest},
		{"corrupt trace", "/v1/analyze", map[string]any{"execution": map[string]any{"version": 99}}, http.StatusBadRequest},
		{"unknown field", "/v1/analyze", map[string]any{"programme": "x"}, http.StatusBadRequest},
		{"witness needs rel", "/v1/witness", map[string]any{"program": figure1Program(t), "rel": "", "a": "lp", "b": "rp"}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+c.path, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d: %s", c.name, resp.StatusCode, c.want, body)
		}
	}
	if resp := getJSON(t, ts.URL+"/v1/jobs/j999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestBudgetExceeded pins the budget split: a per-pair query still maps
// core.ErrBudget to 422 (there is no partial value to return), while the
// matrix path answers 200 with an anytime partial.
func TestBudgetExceeded(t *testing.T) {
	big, err := gen.Mutex(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{
		"program": figure1Program(t), "rel": "MHB", "a": "lp", "b": "rp", "budget": 1,
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("pair budget: status %d, want 422: %s", resp.StatusCode, body)
	}

	resp, body = postJSON(t, ts.URL+"/v1/analyze", map[string]any{
		"execution": executionJSON(t, big), "all": true, "budget": 10,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matrix budget: status %d, want 200 partial: %s", resp.StatusCode, body)
	}
	var m MatrixResult
	if err := json.Unmarshal(decodeEnvelope(t, body).Result, &m); err != nil {
		t.Fatal(err)
	}
	if m.Complete || m.Cause != "budget" {
		t.Errorf("matrix budget: complete=%v cause=%q, want partial with budget cause", m.Complete, m.Cause)
	}
}

// TestHealthzAndMetricsShape sanity-checks the operational endpoints.
func TestHealthzAndMetricsShape(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3})
	var health struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health.Status != "ok" || health.Workers != 3 {
		t.Errorf("healthz = %+v", health)
	}
	postJSON(t, ts.URL+"/v1/analyze", map[string]any{"program": figure1Program(t), "rel": "MHB", "a": "lp", "b": "rp"})
	// A matrix query folds the whole reachable state space into the
	// analyzer's completion memo, so the occupancy gauges must be nonzero.
	postJSON(t, ts.URL+"/v1/analyze", map[string]any{"program": figure1Program(t), "all": true})
	var snap Snapshot
	if resp := getJSON(t, ts.URL+"/metrics", &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if snap.Counters[MetricRequests+"_analyze"] < 1 {
		t.Errorf("no analyze requests counted: %+v", snap.Counters)
	}
	if snap.Counters[MetricCacheMisses] < 1 {
		t.Errorf("no cache misses counted: %+v", snap.Counters)
	}
	h, ok := snap.Histograms[MetricLatency+"_analyze"]
	if !ok || h.Count < 1 {
		t.Errorf("latency histogram missing or empty: %+v", snap.Histograms)
	}
	// The pair query above ran a real search, so its completion-memo
	// occupancy must have been exported.
	if snap.Gauges[MetricMemoEntries] <= 0 || snap.Gauges[MetricMemoBytes] <= 0 {
		t.Errorf("memo occupancy gauges not exported: %+v", snap.Gauges)
	}
	if load := snap.Gauges[MetricMemoLoadPermille]; load <= 0 || load > 750 {
		t.Errorf("memo load permille %d outside (0, 750]", load)
	}
	// A small query may never double its table, so only presence (the
	// counter registered at observe time) is guaranteed.
	if _, ok := snap.Counters[MetricMemoGrows]; !ok {
		t.Errorf("memo grow counter not exported: %+v", snap.Counters)
	}
}

// TestAnalyzeTiersKnob covers the planner knob on the matrix path:
// out-of-range values are clamped (below -1 to -1, above the deepest tier
// to the full cascade) rather than rejected; every setting returns
// identical relation verdicts; the default runs the full cascade (plan
// summary with tier rows and a residue that accounts for every pair);
// tiers=-1 disables the planner (no tier rows, all pairs residue); and
// results are NOT shared across tiers settings (the summary differs, so
// tiers is part of the cache key).
func TestAnalyzeTiersKnob(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	prog := figure1Program(t)

	for _, clamped := range []int{-2, 4} {
		resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{"program": prog, "all": true, "tiers": clamped})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("tiers=%d: status %d, want 200 (clamped): %s", clamped, resp.StatusCode, body)
		}
	}

	matrixFor := func(tiers int) MatrixResult {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{"program": prog, "all": true, "tiers": tiers})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tiers=%d: status %d: %s", tiers, resp.StatusCode, body)
		}
		var m MatrixResult
		if err := json.Unmarshal(decodeEnvelope(t, body).Result, &m); err != nil {
			t.Fatal(err)
		}
		return m
	}

	full := matrixFor(0)
	if full.Plan == nil {
		t.Fatal("planned matrix has no plan summary")
	}
	if len(full.Plan.Tiers) == 0 {
		t.Error("default tiers ran no polynomial tiers")
	}
	decided := 0
	for _, tier := range full.Plan.Tiers {
		decided += tier.PairsDecided
	}
	if decided+full.Plan.ResiduePairs != full.Plan.TotalPairs {
		t.Errorf("plan accounting: %d decided + %d residue != %d total",
			decided, full.Plan.ResiduePairs, full.Plan.TotalPairs)
	}
	if decided == 0 {
		t.Error("polynomial tiers decided nothing on figure1")
	}

	off := matrixFor(-1)
	if off.Plan == nil || len(off.Plan.Tiers) != 0 || off.Plan.ResiduePairs != off.Plan.TotalPairs {
		t.Errorf("tiers=-1 plan summary = %+v, want no tiers and all pairs residue", off.Plan)
	}
	if fmt.Sprint(off.Relations) != fmt.Sprint(full.Relations) {
		t.Errorf("verdicts differ between planner on and off:\non:  %v\noff: %v", full.Relations, off.Relations)
	}

	snap := srv.Metrics().Snapshot()
	if snap.Counters[MetricPlanPairs+"_static"] <= 0 {
		t.Errorf("no static-tier pairs counted: %+v", snap.Counters)
	}
	if _, ok := snap.Counters[MetricPlanPairs+"_exact"]; !ok {
		t.Errorf("no exact residue counter registered: %+v", snap.Counters)
	}
}

// TestDisablePlanConfig pins the server-wide kill switch: with
// DisablePlan set, even a default (tiers=0) matrix request runs
// exact-only and reports an empty cascade.
func TestDisablePlanConfig(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, DisablePlan: true})
	resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{"program": figure1Program(t), "all": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var m MatrixResult
	if err := json.Unmarshal(decodeEnvelope(t, body).Result, &m); err != nil {
		t.Fatal(err)
	}
	if m.Plan == nil || len(m.Plan.Tiers) != 0 || m.Plan.ResiduePairs != m.Plan.TotalPairs {
		t.Errorf("DisablePlan plan summary = %+v, want empty cascade with all pairs residue", m.Plan)
	}
}
