package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"time"
)

// Soak/fault-injection harness. RunSoak boots an in-process server behind
// an httptest listener and drives it with a mixed adversarial workload —
// planner-decidable fast-lane traffic, NP-hard heavy queries, async
// submit-and-poll, resume-from-checkpoint chains, deadline storms, and
// slow clients that stall mid-request — then drains it and reports every
// outcome. The same harness backs the soak tests, `eventorderd
// -selfcheck`, and `bench -soak`: the service's load-shedding contract
// ("every response is 200-complete, 200-partial, 202, or 429 — never a
// hang, never a 5xx") is checked by machines, not by prose.

// SoakProgram is one mini-language workload item for the soak mix.
type SoakProgram struct {
	// Name labels the program in reports.
	Name string
	// Source is the mini-language text (the contents of a .evo file).
	Source string
}

// SoakOptions configures RunSoak. Zero values select the documented
// defaults.
type SoakOptions struct {
	// Duration is how long traffic runs before the drain phase
	// (default 2s).
	Duration time.Duration
	// Clients is the number of mixed-workload request loops (default 4).
	Clients int
	// StormClients is the number of deadline-storm loops: matrix requests
	// with millisecond deadlines that must still answer 200 with a partial
	// result (default 2).
	StormClients int
	// SlowClients is the number of stalled connections: each opens a raw
	// TCP connection, sends a partial request, and sits on it for most of
	// the soak before closing — the server must neither hang a worker on
	// them nor leak their goroutines (default 2).
	SlowClients int
	// Seed seeds the workload generators; equal seeds produce the same
	// request sequence modulo scheduling (default 1).
	Seed int64
	// RequestBudget is the per-request search-node budget the workload
	// attaches to heavy queries so each job's cost is bounded
	// (default 4000).
	RequestBudget int64
	// Server configures the server under test. PartialGrace defaults to
	// 15s here (not the server's 2s): a deadline storm can queue many
	// already-expired anytime jobs, and the grace must cover their
	// residual queue wait or the harness would count 504s the
	// configuration caused, not the code.
	Server Config
	// Programs is the workload corpus (required).
	Programs []SoakProgram
}

func (o *SoakOptions) withDefaults() {
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.StormClients < 0 {
		o.StormClients = 0
	}
	if o.SlowClients < 0 {
		o.SlowClients = 0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RequestBudget <= 0 {
		o.RequestBudget = 4000
	}
	if o.Server.PartialGrace <= 0 {
		o.Server.PartialGrace = 15 * time.Second
	}
}

// SoakReport aggregates one RunSoak's outcomes.
type SoakReport struct {
	// Duration is the traffic phase's configured length.
	Duration time.Duration
	// Requests counts every HTTP exchange the workload completed
	// (including async polls).
	Requests int64
	// Statuses counts responses by HTTP status code.
	Statuses map[int]int64
	// Complete and Partial count matrix results by their Complete flag.
	Complete int64
	Partial  int64
	// Shed counts responses whose trace reported load-shedding
	// degradation.
	Shed int64
	// Lanes counts responses by the trace's admission lane.
	Lanes map[string]int64
	// Resumes counts resume-from-checkpoint requests issued.
	Resumes int64
	// Unexpected lists contract violations the workload observed (wrong
	// status, missing request ID, partial without checkpoint, ...),
	// capped at 20. A clean soak has none.
	Unexpected []string
	// FastQueueWaitP99Ms, HeavyQueueWaitP50Ms, HeavyQueueWaitP99Ms are
	// queue-wait quantiles per admission lane, from the server's
	// log-bucketed histograms. The fast-lane isolation contract is
	// FastQueueWaitP99Ms < HeavyQueueWaitP50Ms under saturation.
	FastQueueWaitP99Ms  float64
	HeavyQueueWaitP50Ms float64
	HeavyQueueWaitP99Ms float64
	// FastSamples and HeavySamples are those histograms' populations.
	FastSamples  int64
	HeavySamples int64
	// AnalyzeP50Ms, AnalyzeP99Ms, AnalyzeP999Ms are handler-latency
	// quantiles for the analyze endpoint.
	AnalyzeP50Ms  float64
	AnalyzeP99Ms  float64
	AnalyzeP999Ms float64
	// Metrics is the server's full registry snapshot after the drain.
	Metrics Snapshot
}

// soakCollector accumulates the report under a mutex (many client
// goroutines write it).
type soakCollector struct {
	mu  sync.Mutex
	rep *SoakReport
}

func (c *soakCollector) count(fn func(rep *SoakReport)) {
	c.mu.Lock()
	fn(c.rep)
	c.mu.Unlock()
}

func (c *soakCollector) unexpected(format string, args ...any) {
	c.mu.Lock()
	if len(c.rep.Unexpected) < 20 {
		c.rep.Unexpected = append(c.rep.Unexpected, fmt.Sprintf(format, args...))
	}
	c.mu.Unlock()
}

// soakRun carries one soak's shared state.
type soakRun struct {
	opts   SoakOptions
	url    string
	addr   string
	client *http.Client
	col    *soakCollector
	stop   <-chan struct{}
}

// RunSoak runs the soak: boot, mixed traffic for opts.Duration, stop the
// clients, drain via Shutdown, snapshot the metrics. The error covers
// harness-level failures (boot, drain timeout); workload-level contract
// violations land in the report's Unexpected list so the caller can
// decide how loudly to fail.
func RunSoak(ctx context.Context, opts SoakOptions) (*SoakReport, error) {
	opts.withDefaults()
	if len(opts.Programs) == 0 {
		return nil, fmt.Errorf("service: soak needs at least one workload program")
	}
	srv, err := New(opts.Server)
	if err != nil {
		return nil, fmt.Errorf("service: soak boot: %w", err)
	}
	ts := httptest.NewUnstartedServer(srv.Handler())
	// Bound how long a stalled client may dribble its headers; the body
	// stall is bounded by the connection close the harness performs.
	ts.Config.ReadHeaderTimeout = 2 * time.Second
	ts.Start()
	defer ts.Close()

	stop := make(chan struct{})
	run := &soakRun{
		opts:   opts,
		url:    ts.URL,
		addr:   ts.Listener.Addr().String(),
		client: &http.Client{Timeout: 60 * time.Second},
		col:    &soakCollector{rep: &SoakReport{Duration: opts.Duration, Statuses: map[int]int64{}, Lanes: map[string]int64{}}},
		stop:   stop,
	}

	var wg sync.WaitGroup
	for i := 0; i < opts.Clients; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			run.mixedLoop(rand.New(rand.NewSource(seed)))
		}(opts.Seed + int64(i))
	}
	for i := 0; i < opts.StormClients; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			run.stormLoop(rand.New(rand.NewSource(seed)))
		}(opts.Seed + 1000 + int64(i))
	}
	var slowWG sync.WaitGroup
	for i := 0; i < opts.SlowClients; i++ {
		slowWG.Add(1)
		go func() {
			defer slowWG.Done()
			run.slowClient()
		}()
	}

	select {
	case <-time.After(opts.Duration):
	case <-ctx.Done():
	}
	close(stop)
	wg.Wait()
	slowWG.Wait()

	// Drain phase: traffic has stopped but async jobs may still be
	// queued — Shutdown must finish them and return without error.
	drainCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return run.col.rep, fmt.Errorf("service: soak drain: %w", err)
	}

	rep := run.col.rep
	snap := srv.Metrics().Snapshot()
	rep.Metrics = snap
	if h, ok := snap.Histograms[MetricQueueWait+"_"+LaneFast]; ok {
		rep.FastSamples = h.Count
		rep.FastQueueWaitP99Ms = h.Quantile(0.99) * 1000
	}
	if h, ok := snap.Histograms[MetricQueueWait+"_"+LaneHeavy]; ok {
		rep.HeavySamples = h.Count
		rep.HeavyQueueWaitP50Ms = h.Quantile(0.50) * 1000
		rep.HeavyQueueWaitP99Ms = h.Quantile(0.99) * 1000
	}
	if h, ok := snap.Histograms[MetricLatency+"_analyze"]; ok {
		rep.AnalyzeP50Ms = h.Quantile(0.50) * 1000
		rep.AnalyzeP99Ms = h.Quantile(0.99) * 1000
		rep.AnalyzeP999Ms = h.Quantile(0.999) * 1000
	}
	return rep, nil
}

// stopped reports whether the traffic phase is over.
func (r *soakRun) stopped() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

// mixedLoop is one mixed-workload client: matrix queries across the
// planner-knob space (the cache-busting axis), async submit-and-poll,
// race queries, and budget-starved runs chained into resumes.
func (r *soakRun) mixedLoop(rng *rand.Rand) {
	for !r.stopped() {
		p := r.opts.Programs[rng.Intn(len(r.opts.Programs))]
		switch rng.Intn(6) {
		case 0, 1:
			r.matrixOnce(rng, p, false)
		case 2, 3:
			// Async weighs as much as sync on purpose: submissions that
			// do not block the client are what keep the heavy queue
			// persistently deep — the regime admission control exists for.
			r.matrixOnce(rng, p, true)
		case 4:
			r.racesOnce(rng, p)
		case 5:
			r.resumeChain(rng, p)
		}
	}
}

// matrixBody builds a matrix request over the variant axes that change
// the cache key (tiers, ignoreData, seed, rel), keeping the cache-hit
// rate realistic instead of saturating.
func (r *soakRun) matrixBody(rng *rand.Rand, p SoakProgram) map[string]any {
	body := map[string]any{
		"program":   p.Source,
		"seed":      1 + rng.Int63n(4),
		"all":       true,
		"budget":    r.opts.RequestBudget,
		"timeoutMs": 5000,
	}
	if rng.Intn(4) == 0 {
		body["ignoreData"] = true
	}
	if rng.Intn(3) == 0 {
		body["tiers"] = rng.Intn(5) - 1 // -1..3
	}
	return body
}

func (r *soakRun) matrixOnce(rng *rand.Rand, p SoakProgram, async bool) {
	body := r.matrixBody(rng, p)
	if async {
		body["async"] = true
		resp, raw := r.post("/v1/analyze", body)
		if resp == nil {
			return
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			return
		}
		if resp.StatusCode == http.StatusOK {
			// The cache answers async submissions synchronously (no job
			// to poll) — a plain matrix envelope, validated as such.
			r.checkMatrixResponse(p, resp, raw)
			return
		}
		if resp.StatusCode != http.StatusAccepted {
			r.col.unexpected("%s async submit: status %d: %.200s", p.Name, resp.StatusCode, raw)
			return
		}
		var jr JobResponse
		if err := json.Unmarshal(raw, &jr); err != nil || jr.ID == "" || jr.RequestID == "" {
			r.col.unexpected("%s async submit: bad job response %.200s", p.Name, raw)
			return
		}
		for i := 0; i < 8 && !r.stopped(); i++ {
			resp, raw := r.get("/v1/jobs/" + jr.ID)
			if resp == nil {
				return
			}
			if resp.StatusCode != http.StatusOK {
				r.col.unexpected("%s poll: status %d: %.200s", p.Name, resp.StatusCode, raw)
				return
			}
			var poll JobResponse
			if err := json.Unmarshal(raw, &poll); err != nil {
				r.col.unexpected("%s poll: bad body %.200s", p.Name, raw)
				return
			}
			if poll.Status == JobDone || poll.Status == JobFailed {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		return
	}
	resp, raw := r.post("/v1/analyze", body)
	r.checkMatrixResponse(p, resp, raw)
}

// checkMatrixResponse validates one synchronous matrix exchange against
// the load-shedding contract and tallies it.
func (r *soakRun) checkMatrixResponse(p SoakProgram, resp *http.Response, raw []byte) (complete bool, checkpoint json.RawMessage) {
	if resp == nil {
		return false, nil
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		if resp.Header.Get("Retry-After") == "" {
			r.col.unexpected("%s: 429 without Retry-After", p.Name)
		}
		return false, nil
	case http.StatusOK:
	default:
		r.col.unexpected("%s matrix: status %d: %.200s", p.Name, resp.StatusCode, raw)
		return false, nil
	}
	var env Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		r.col.unexpected("%s matrix: bad envelope %.200s", p.Name, raw)
		return false, nil
	}
	if env.RequestID == "" || env.RequestID != resp.Header.Get("X-Request-Id") {
		r.col.unexpected("%s matrix: request id %q does not match header %q", p.Name, env.RequestID, resp.Header.Get("X-Request-Id"))
	}
	if env.Trace == nil || env.Trace.RequestID != env.RequestID {
		r.col.unexpected("%s matrix: envelope without matching trace", p.Name)
		return false, nil
	}
	r.col.count(func(rep *SoakReport) {
		rep.Lanes[env.Trace.Lane]++
		if env.Trace.Shed {
			rep.Shed++
		}
	})
	var mr struct {
		Complete   bool            `json:"complete"`
		Checkpoint json.RawMessage `json:"checkpoint"`
	}
	if err := json.Unmarshal(env.Result, &mr); err != nil {
		r.col.unexpected("%s matrix: bad result %.200s", p.Name, env.Result)
		return false, nil
	}
	if !mr.Complete && len(mr.Checkpoint) == 0 {
		r.col.unexpected("%s matrix: partial result without a checkpoint", p.Name)
	}
	r.col.count(func(rep *SoakReport) {
		if mr.Complete {
			rep.Complete++
		} else {
			rep.Partial++
		}
	})
	return mr.Complete, mr.Checkpoint
}

// resumeChain starves a matrix query's budget to force a partial result,
// then resumes it from the returned checkpoint with a larger budget —
// the anytime degrade-then-continue path load shedding relies on.
func (r *soakRun) resumeChain(rng *rand.Rand, p SoakProgram) {
	body := r.matrixBody(rng, p)
	body["budget"] = int64(16) // starve: almost certainly partial
	resp, raw := r.post("/v1/analyze", body)
	complete, checkpoint := r.checkMatrixResponse(p, resp, raw)
	if complete || len(checkpoint) == 0 || r.stopped() {
		return
	}
	body["budget"] = r.opts.RequestBudget
	body["resume"] = checkpoint
	r.col.count(func(rep *SoakReport) { rep.Resumes++ })
	resp, raw = r.post("/v1/analyze", body)
	r.checkMatrixResponse(p, resp, raw)
}

func (r *soakRun) racesOnce(rng *rand.Rand, p SoakProgram) {
	body := map[string]any{
		"program":   p.Source,
		"seed":      1 + rng.Int63n(4),
		"timeoutMs": 20000,
	}
	resp, raw := r.post("/v1/races", body)
	if resp == nil {
		return
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		if resp.Header.Get("Retry-After") == "" {
			r.col.unexpected("%s: 429 without Retry-After", p.Name)
		}
	default:
		r.col.unexpected("%s races: status %d: %.200s", p.Name, resp.StatusCode, raw)
	}
}

// stormLoop fires matrix queries with millisecond deadlines. The anytime
// contract makes these the sharpest probe the service has: every one
// must come back 200 with a partial (or tiny-but-complete) result, or
// 429 — a 504 means the partial-grace path regressed.
func (r *soakRun) stormLoop(rng *rand.Rand) {
	for !r.stopped() {
		p := r.opts.Programs[rng.Intn(len(r.opts.Programs))]
		body := r.matrixBody(rng, p)
		body["timeoutMs"] = 1 + rng.Int63n(10)
		resp, raw := r.post("/v1/analyze", body)
		r.checkMatrixResponse(p, resp, raw)
	}
}

// slowClient opens a raw connection, sends a partial request, and stalls
// until the traffic phase ends, then closes. The server must neither
// dedicate a worker to it nor leak its serving goroutine after the close.
func (r *soakRun) slowClient() {
	conn, err := net.DialTimeout("tcp", r.addr, 2*time.Second)
	if err != nil {
		r.col.unexpected("slow client dial: %v", err)
		return
	}
	defer conn.Close()
	_, _ = io.WriteString(conn, "POST /v1/analyze HTTP/1.1\r\nHost: soak\r\nContent-Type: application/json\r\nContent-Length: 100000\r\n\r\n{\"program\": \"")
	<-r.stop
}

// post issues one POST and reads the body fully; transport-level errors
// land in the unexpected list (nil response). Client-side timeouts count
// as hangs — the contract says the server always answers.
func (r *soakRun) post(path string, body any) (*http.Response, []byte) {
	buf, err := json.Marshal(body)
	if err != nil {
		r.col.unexpected("marshal %s: %v", path, err)
		return nil, nil
	}
	resp, err := r.client.Post(r.url+path, "application/json", bytes.NewReader(buf))
	return r.finish(path, resp, err)
}

func (r *soakRun) get(path string) (*http.Response, []byte) {
	resp, err := r.client.Get(r.url + path)
	return r.finish(path, resp, err)
}

func (r *soakRun) finish(path string, resp *http.Response, err error) (*http.Response, []byte) {
	if err != nil {
		r.col.unexpected("%s: transport: %v", path, err)
		return nil, nil
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		r.col.unexpected("%s: read body: %v", path, err)
		return nil, nil
	}
	r.col.count(func(rep *SoakReport) {
		rep.Requests++
		rep.Statuses[resp.StatusCode]++
	})
	return resp, raw
}

// Leak probes ---------------------------------------------------------------

// CountOpenFDs returns the process's open file-descriptor count via
// /proc/self/fd, or -1 where that interface is unavailable (callers
// should skip fd-leak assertions then).
func CountOpenFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// GoroutinesSettled polls until the live goroutine count drops to at
// most limit or the timeout expires, returning the final count and
// whether it settled. Goroutine teardown is asynchronous (timer and
// connection goroutines unwind after their triggering event), so leak
// checks must poll, not sample once.
func GoroutinesSettled(limit int, timeout time.Duration) (int, bool) {
	deadline := time.Now().Add(timeout)
	for {
		n := runtime.NumGoroutine()
		if n <= limit {
			return n, true
		}
		if time.Now().After(deadline) {
			return n, false
		}
		time.Sleep(10 * time.Millisecond)
	}
}
