package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"eventorder/internal/journal"
	blobstore "eventorder/internal/store"
	"eventorder/internal/vfs"
)

// Durability layer. With Config.StateDir set, the server journals every
// async job's lifecycle to a write-ahead log and persists result bodies
// and drain checkpoints to a blob store, so a crash or restart loses no
// accepted work:
//
//	<state-dir>/journal/seg-*.wal   lifecycle records (CRC32C-framed WAL)
//	<state-dir>/blobs/*.blob        result bodies, checkpoints, cache entries
//
// Ordering invariants:
//
//   - the "accepted" record is durable BEFORE the job is enqueued or the
//     202 is written — an acknowledged job is always recoverable;
//   - a blob is durable BEFORE the journal record that references it — a
//     crash between the two orphans a blob (harmless, garbage-collected
//     by job eviction) but never yields a dangling reference;
//   - a journal append failure wedges the journal, and the server then
//     refuses async submissions with 503 rather than acknowledge work it
//     cannot make durable (synchronous requests, which were never
//     durable, continue to be served).
//
// On startup the journal is replayed (torn tails truncated, corruption
// quarantined — see internal/journal), the job table is rebuilt with the
// original job ids, terminal jobs get their bodies back from the blob
// store, the result cache is rehydrated, the journal is compacted to the
// live record set, and every non-terminal job is re-enqueued — resuming
// from its latest persisted checkpoint when one exists.
//
// Only async jobs are durable: a synchronous request's result is owned by
// a connection that does not survive the crash either.

// jobRecord is one journal entry, JSON-encoded. T is the transition:
// "accepted" (carries the endpoint and request body), "running",
// "checkpointed" (carries the blob key of the latest checkpoint),
// "done" (carries the blob key of the result body, when persisting it
// succeeded), or "failed" (carries the error).
type jobRecord struct {
	T        string          `json:"t"`
	ID       string          `json:"id"`
	Ep       string          `json:"ep,omitempty"`
	Req      json.RawMessage `json:"req,omitempty"`
	Blob     string          `json:"blob,omitempty"`
	Complete bool            `json:"complete,omitempty"`
	Err      string          `json:"err,omitempty"`
}

// Blob key layout.
func jobResultKey(id string) string { return "job/" + id + "/result" }
func jobCkptKey(id string) string   { return "job/" + id + "/ckpt" }

const cacheKeyPrefix = "cache/"

// durable reports whether the durability layer is active.
func (s *Server) durable() bool { return s.jrnl != nil }

// noopTracer returns a tracer for work with no originating HTTP request
// (crash recovery); its spans go nowhere but keep the run path uniform.
func noopTracer() *tracer { return &tracer{id: "recovery"} }

// initDurability opens the journal and blob store under StateDir, replays
// the journal, rehydrates the job table and result cache, compacts, and
// starts the re-enqueue goroutine. Called from New; a nil error with
// StateDir unset means durability is off.
func (s *Server) initDurability() error {
	if s.cfg.StateDir == "" {
		return nil
	}
	fsys := s.cfg.StateFS
	if fsys == nil {
		fsys = vfs.OS{}
	}
	jdir := vfs.Join(s.cfg.StateDir, "journal")
	bdir := vfs.Join(s.cfg.StateDir, "blobs")

	rep, err := journal.Scan(fsys, jdir)
	if err != nil {
		return fmt.Errorf("service: journal replay: %w", err)
	}
	s.metrics.Counter(MetricJournalReplayRecords).Add(int64(len(rep.Records)))
	s.metrics.Counter(MetricJournalCorruptFrames).Add(int64(rep.CorruptFrames))
	if len(rep.Quarantined) > 0 {
		s.log.Warn("journal corruption: segments quarantined",
			"quarantined", strings.Join(rep.Quarantined, ","), "corruptFrames", rep.CorruptFrames)
	}

	blobs, err := blobstore.Open(fsys, bdir)
	if err != nil {
		return fmt.Errorf("service: blob store: %w", err)
	}
	s.blobs = blobs

	jr, err := journal.Open(jdir, journal.Options{FS: fsys, MaxSegmentBytes: s.cfg.JournalSegmentBytes})
	if err != nil {
		return fmt.Errorf("service: journal open: %w", err)
	}
	s.jrnl = jr

	// Rebuild the job table from the replayed records (later records for
	// an id override earlier ones — duplicate "accepted" records across
	// segments, as a crashed compaction can leave, are idempotent).
	type recovered struct {
		ep       string
		req      json.RawMessage
		state    JobState
		blob     string // result blob key for terminal jobs
		ckpt     string // checkpoint blob key for drain-checkpointed jobs
		complete bool
		errs     string
		order    int
	}
	table := map[string]*recovered{}
	var ids []string
	for i, raw := range rep.Records {
		var rec jobRecord
		if err := json.Unmarshal(raw, &rec); err != nil || rec.ID == "" {
			// An intact frame with an unreadable payload counts as
			// corruption for observability, but cannot stop recovery.
			s.metrics.Counter(MetricJournalCorruptFrames).Add(1)
			continue
		}
		rj, ok := table[rec.ID]
		if !ok {
			rj = &recovered{state: JobQueued, order: i}
			table[rec.ID] = rj
			ids = append(ids, rec.ID)
		}
		switch rec.T {
		case "accepted":
			rj.ep, rj.req = rec.Ep, rec.Req
		case "running":
			// Non-terminal; nothing to carry.
		case "checkpointed":
			rj.ckpt = rec.Blob
		case "done":
			rj.state, rj.blob, rj.complete = JobDone, rec.Blob, rec.Complete
		case "failed":
			rj.state, rj.errs = JobFailed, rec.Err
		}
	}

	// Job blobs are garbage-collected when the job table evicts an id —
	// including jobs evicted during the restore below, when the journaled
	// backlog outsizes MaxJobs.
	s.store.onEvict = func(id string) {
		_ = s.blobs.Delete(jobResultKey(id))
		_ = s.blobs.Delete(jobCkptKey(id))
	}

	// Rehydrate the job table (in journal order, so ids and eviction
	// order are stable) and collect the pending set.
	type pending struct {
		id   string
		ep   string
		req  json.RawMessage
		ckpt string
	}
	var torun []pending
	for _, id := range ids {
		rj := table[id]
		switch rj.state {
		case JobFailed:
			s.store.restore(id, JobFailed, nil, rj.errs)
		case JobDone:
			body, err := s.blobs.Get(rj.blob)
			if rj.blob == "" || err != nil {
				// The result body did not survive (crash between journal
				// record and blob, or blob corruption). Re-run if we still
				// have the request; otherwise the job fails visibly rather
				// than serving nothing.
				if len(rj.req) > 0 {
					s.store.restore(id, JobQueued, nil, "")
					torun = append(torun, pending{id: id, ep: rj.ep, req: rj.req, ckpt: rj.ckpt})
				} else {
					s.store.restore(id, JobFailed, nil, "service: persisted result lost")
				}
				continue
			}
			s.store.restore(id, JobDone, body, "")
		default: // accepted / running / checkpointed: re-enqueue
			if len(rj.req) == 0 {
				s.store.restore(id, JobFailed, nil, "service: journal lost the request body")
				continue
			}
			s.store.restore(id, JobQueued, nil, "")
			torun = append(torun, pending{id: id, ep: rj.ep, req: rj.req, ckpt: rj.ckpt})
		}
	}

	// Rehydrate the result cache from persisted cache blobs, newest-
	// agnostic (Range order is unspecified); entries past the byte budget
	// are dropped from disk too, so the store cannot grow unboundedly
	// across restarts.
	var cacheBytes int64
	if err := s.blobs.Range(func(key string, payload []byte) bool {
		if !strings.HasPrefix(key, cacheKeyPrefix) {
			return true
		}
		if cacheBytes+int64(len(payload)) > s.cfg.CacheBytes {
			_ = s.blobs.Delete(key)
			return true
		}
		cacheBytes += int64(len(payload))
		s.cache.put(strings.TrimPrefix(key, cacheKeyPrefix), payload)
		s.metrics.Counter(MetricStoreRehydrated).Add(1)
		return true
	}); err != nil {
		return fmt.Errorf("service: cache rehydration: %w", err)
	}

	// Compact the journal down to the live record set: one terminal
	// record per finished job, accepted(+checkpointed) per pending job.
	// Skipped when nothing was replayed — a fresh boot has nothing to
	// fold, and rewriting an empty segment every boot is pure churn.
	var live [][]byte
	appendRec := func(rec jobRecord) {
		if b, err := json.Marshal(rec); err == nil {
			live = append(live, b)
		}
	}
	for _, id := range ids {
		rj := table[id]
		if _, stillStored := s.store.get(id); !stillStored {
			continue // evicted during restore: drop its records too
		}
		switch rj.state {
		case JobFailed:
			appendRec(jobRecord{T: "accepted", ID: id, Ep: rj.ep, Req: rj.req})
			appendRec(jobRecord{T: "failed", ID: id, Err: rj.errs})
		case JobDone:
			appendRec(jobRecord{T: "accepted", ID: id, Ep: rj.ep, Req: rj.req})
			appendRec(jobRecord{T: "done", ID: id, Blob: rj.blob, Complete: rj.complete})
		default:
			appendRec(jobRecord{T: "accepted", ID: id, Ep: rj.ep, Req: rj.req})
			if rj.ckpt != "" {
				appendRec(jobRecord{T: "checkpointed", ID: id, Blob: rj.ckpt})
			}
		}
	}
	if len(rep.Records) > 0 {
		if err := s.jrnl.Compact(live); err != nil {
			return fmt.Errorf("service: journal compaction: %w", err)
		}
	}
	s.observeJournal()

	// Re-enqueue pending jobs in the background: the queue is bounded and
	// possibly smaller than the recovered backlog, so the goroutine
	// retries full-queue rejections instead of dropping work. It stops
	// only when the server drains.
	if len(torun) > 0 {
		s.log.Info("recovering jobs from journal", "pending", len(torun))
	}
	s.recoveryWG.Add(1)
	go func() {
		defer s.recoveryWG.Done()
		for _, p := range torun {
			if !s.requeueRecovered(p.id, p.ep, p.req, p.ckpt) {
				return // draining
			}
			s.metrics.Counter(MetricJobsRecovered).Add(1)
		}
	}()
	return nil
}

// requeueRecovered rebuilds one journaled job and submits it, retrying
// queue-full rejections. Returns false when the server is draining.
func (s *Server) requeueRecovered(id, ep string, reqJSON json.RawMessage, ckptBlob string) bool {
	sj, ok := s.store.get(id)
	if !ok {
		return true // evicted while waiting: superseded
	}
	fail := func(err error) {
		sj.set(JobFailed, nil, err.Error())
		s.journalRecord(jobRecord{T: "failed", ID: id, Err: err.Error()})
	}

	// A drain checkpoint supersedes whatever resume string the original
	// request carried: rewrite the request to continue from it.
	if ckptBlob != "" {
		if ck, err := s.blobs.Get(ckptBlob); err == nil && ep == "analyze" {
			var areq AnalyzeRequest
			if json.Unmarshal(reqJSON, &areq) == nil {
				areq.Resume = string(ck)
				if b, err := json.Marshal(&areq); err == nil {
					reqJSON = b
				}
			}
		}
		// A lost or corrupt checkpoint blob is not fatal: the job re-runs
		// from scratch, which recovery must tolerate anyway.
	}

	o, err := s.prepareEndpoint(ep, reqJSON, noopTracer())
	if err != nil {
		fail(err)
		return true
	}
	j := s.buildAsyncJob(sj, o, s.timeout(o.timeoutMs))
	for {
		err := s.submit(j)
		switch {
		case err == nil:
			return true
		case errors.Is(err, errDraining):
			// Leave the job journaled as pending: the next boot retries.
			return false
		default: // queue full: the backlog outsizes the queue; wait
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// prepareEndpoint rebuilds a dispatchable job from a journaled endpoint
// name and request body — the same prepare path the HTTP handlers use.
func (s *Server) prepareEndpoint(ep string, reqJSON json.RawMessage, tr *tracer) (dispatchOpts, error) {
	switch ep {
	case "analyze":
		var req AnalyzeRequest
		if err := json.Unmarshal(reqJSON, &req); err != nil {
			return dispatchOpts{}, fmt.Errorf("service: journaled request: %w", err)
		}
		return s.prepareAnalyze(&req, tr)
	case "races":
		var req RacesRequest
		if err := json.Unmarshal(reqJSON, &req); err != nil {
			return dispatchOpts{}, fmt.Errorf("service: journaled request: %w", err)
		}
		return s.prepareRaces(&req, tr)
	case "witness":
		var req WitnessRequest
		if err := json.Unmarshal(reqJSON, &req); err != nil {
			return dispatchOpts{}, fmt.Errorf("service: journaled request: %w", err)
		}
		return s.prepareWitness(&req, tr)
	}
	return dispatchOpts{}, fmt.Errorf("service: journaled job has unknown endpoint %q", ep)
}

// journalRecord appends one lifecycle record. Errors wedge the journal
// permanently (see internal/journal); from then on async admission
// refuses work with 503. The error is also returned so accept-time
// callers can refuse the triggering request itself.
func (s *Server) journalRecord(rec jobRecord) error {
	if !s.durable() {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := s.jrnl.Append(b); err != nil {
		s.log.Error("journal append failed; async admission disabled", "err", err.Error())
		return err
	}
	s.metrics.Counter(MetricJournalRecords).Add(1)
	s.observeJournal()
	return nil
}

// observeJournal exports journal counters.
func (s *Server) observeJournal() {
	st := s.jrnl.Stats()
	s.metrics.Gauge(MetricJournalSegments).Set(int64(st.Segments))
}

// journalAccepted makes a fresh async job durable before it is
// acknowledged. A failure means the job MUST NOT be acknowledged.
func (s *Server) journalAccepted(id, ep string, reqJSON json.RawMessage) error {
	return s.journalRecord(jobRecord{T: "accepted", ID: id, Ep: ep, Req: reqJSON})
}

// asyncOnDone is the durable async job epilogue: classify the outcome,
// persist what recovery will need, journal the transition, and update the
// polled job state.
//
// Outcome classification:
//
//   - error → "failed" (terminal);
//   - complete result → "done" (terminal) with the body persisted;
//   - partial result clipped by server drain (cause "canceled" while the
//     server is draining) → "checkpointed" (NON-terminal): the checkpoint
//     is persisted and the next boot resumes the job from it — drain
//     throws away no work;
//   - partial result the client asked for (its own budget or deadline
//     struck) → "done" (terminal) with complete=false: the client got
//     exactly what it requested and holds the checkpoint to continue.
func (s *Server) asyncOnDone(sj *storedJob, key string, out jobOutput, err error) {
	if err != nil {
		sj.set(JobFailed, nil, err.Error())
		s.journalRecord(jobRecord{T: "failed", ID: sj.id, Err: err.Error()})
		return
	}
	s.cacheStore(key, out)
	drained := s.durable() && !out.complete && out.checkpoint != "" &&
		out.cause == "canceled" && s.draining.Load()
	if drained {
		ck := jobCkptKey(sj.id)
		if perr := s.blobs.Put(ck, []byte(out.checkpoint)); perr != nil {
			ck = "" // blob lost: the job re-runs from scratch next boot
		}
		s.journalRecord(jobRecord{T: "checkpointed", ID: sj.id, Blob: ck})
		s.metrics.Counter(MetricJobsDrainCheckpointed).Add(1)
		// The in-memory view still serves the partial to any last-second
		// poller; the journal (non-terminal) is what the next boot obeys.
		sj.set(JobDone, out.body, "")
		sj.setProgress(out.progress)
		return
	}
	if s.durable() {
		blob := jobResultKey(sj.id)
		if perr := s.blobs.Put(blob, out.body); perr != nil {
			blob = "" // recovery re-runs instead of serving the body
		}
		s.journalRecord(jobRecord{T: "done", ID: sj.id, Blob: blob, Complete: out.complete})
	}
	sj.set(JobDone, out.body, "")
	sj.setProgress(out.progress)
}

// buildAsyncJob binds a stored job to its prepared work: the runJob
// lifecycle updates the polled state and, when durable, the journal.
// Shared by the HTTP async path (which passes the shed-clamped deadline)
// and crash recovery.
func (s *Server) buildAsyncJob(sj *storedJob, o dispatchOpts, timeout time.Duration) *job {
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	if o.anytime {
		// Drain checkpointing: when Shutdown's checkpoint grace expires,
		// in-flight anytime jobs are canceled so they surface resumable
		// partials instead of holding the drain open.
		stop := context.AfterFunc(s.drainCtx, cancel)
		inner := cancel
		cancel = func() { stop(); inner() }
	}
	run := o.run
	return &job{
		ctx:    ctx,
		cancel: cancel,
		run: func(ctx context.Context) (jobOutput, error) {
			sj.set(JobRunning, nil, "")
			s.journalRecord(jobRecord{T: "running", ID: sj.id})
			return run(ctx)
		},
		anytime: o.anytime,
		lane:    o.lane,
		tracer:  o.tracer,
		onDone: func(out jobOutput, err error) {
			s.asyncOnDone(sj, o.key, out, err)
		},
		done: make(chan struct{}),
	}
}

// cacheStore caches a complete result body and, when durable, persists
// it so the cache survives restarts.
func (s *Server) cacheStore(key string, out jobOutput) {
	if key == "" || !out.cacheable {
		return
	}
	s.cache.put(key, out.body)
	if s.durable() {
		_ = s.blobs.Put(cacheKeyPrefix+key, out.body)
	}
}

// finishDurability is the drain epilogue: wait out the recovery
// goroutine (it exits promptly once submissions return errDraining) and
// close the journal so its tail is durable.
func (s *Server) finishDurability() {
	s.recoveryWG.Wait()
	if s.durable() {
		s.closeJournalOnce.Do(func() {
			if err := s.jrnl.Close(); err != nil && !errors.Is(err, journal.ErrWedged) {
				s.log.Error("journal close", "err", err.Error())
			}
		})
	}
}
