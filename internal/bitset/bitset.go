// Package bitset provides a dense, fixed-capacity bit set used throughout
// the event-ordering library for relation matrices, transitive closures,
// and explorer state fingerprints.
//
// The zero value of Set is an empty set of capacity zero; most callers
// construct sets with New so that capacity checks are explicit. All
// operations that combine two sets require equal word lengths, which New
// guarantees for sets created with the same size.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bit set over the universe [0, n) fixed at creation time.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set over the universe [0, n).
// It panics if n is negative.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the size of the universe (not the number of set bits).
func (s *Set) Len() int { return s.n }

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bit is set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Set sets bit i.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Flip toggles bit i.
func (s *Set) Flip(i int) {
	s.check(i)
	s.words[i/wordBits] ^= 1 << uint(i%wordBits)
}

// Has reports whether bit i is set.
func (s *Set) Has(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Reset clears every bit, keeping the capacity.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets every bit in [0, n).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim zeroes the bits beyond n in the last word so that Count, Equal and
// Hash remain canonical.
func (s *Set) trim() {
	if s.n%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(s.n%wordBits)) - 1
	}
}

// Clone returns a copy of s.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Copy overwrites s with the contents of t. The sets must have the same
// universe size.
func (s *Set) Copy(t *Set) {
	s.mustMatch(t)
	copy(s.words, t.words)
}

func (s *Set) mustMatch(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: size mismatch %d vs %d", s.n, t.n))
	}
}

// Or sets s to s ∪ t and reports whether s changed.
func (s *Set) Or(t *Set) bool {
	s.mustMatch(t)
	changed := false
	for i, w := range t.words {
		old := s.words[i]
		nw := old | w
		if nw != old {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// And sets s to s ∩ t.
func (s *Set) And(t *Set) {
	s.mustMatch(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// AndNot sets s to s \ t.
func (s *Set) AndNot(t *Set) {
	s.mustMatch(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// Xor sets s to the symmetric difference of s and t.
func (s *Set) Xor(t *Set) {
	s.mustMatch(t)
	for i, w := range t.words {
		s.words[i] ^= w
	}
}

// Intersects reports whether s ∩ t is nonempty.
func (s *Set) Intersects(t *Set) bool {
	s.mustMatch(t)
	for i, w := range t.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every bit of s is also set in t.
func (s *Set) SubsetOf(t *Set) bool {
	s.mustMatch(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same bits.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// Next returns the index of the first set bit at or after i, or -1 if none.
func (s *Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// ForEach calls f for every set bit in increasing order.
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &^= 1 << uint(b)
		}
	}
}

// Slice returns the indices of all set bits in increasing order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Hash returns an FNV-1a style fingerprint of the set contents, suitable for
// memoization keys. Sets with equal contents hash equally.
func (s *Set) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range s.words {
		for i := 0; i < 8; i++ {
			h ^= (w >> uint(8*i)) & 0xff
			h *= prime
		}
	}
	return h
}

// String renders the set as a sorted list of indices, e.g. "{1, 5, 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

// Words exposes the raw backing words (read-only by convention); used by
// explorer state encoding.
func (s *Set) Words() []uint64 { return s.words }
