package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 1000} {
		s := New(n)
		if s.Len() != n {
			t.Errorf("Len() = %d, want %d", s.Len(), n)
		}
		if s.Count() != 0 {
			t.Errorf("Count() = %d, want 0", s.Count())
		}
		if !s.Empty() {
			t.Errorf("Empty() = false for new set of size %d", n)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetHasClear(t *testing.T) {
	s := New(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		s.Set(i)
	}
	for _, i := range idx {
		if !s.Has(i) {
			t.Errorf("Has(%d) = false after Set", i)
		}
	}
	if s.Count() != len(idx) {
		t.Errorf("Count() = %d, want %d", s.Count(), len(idx))
	}
	for _, i := range idx {
		s.Clear(i)
		if s.Has(i) {
			t.Errorf("Has(%d) = true after Clear", i)
		}
	}
	if !s.Empty() {
		t.Error("set not empty after clearing all bits")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) did not panic", i)
				}
			}()
			s.Set(i)
		}()
	}
}

func TestFlip(t *testing.T) {
	s := New(70)
	s.Flip(69)
	if !s.Has(69) {
		t.Error("Flip did not set bit")
	}
	s.Flip(69)
	if s.Has(69) {
		t.Error("Flip did not clear bit")
	}
}

func TestFillAndReset(t *testing.T) {
	s := New(67)
	s.Fill()
	if s.Count() != 67 {
		t.Errorf("after Fill, Count() = %d, want 67", s.Count())
	}
	s.Reset()
	if !s.Empty() {
		t.Error("after Reset, set not empty")
	}
}

func TestFillCanonical(t *testing.T) {
	// Fill must not set bits beyond n, otherwise Equal/Hash break.
	a := New(67)
	a.Fill()
	b := New(67)
	for i := 0; i < 67; i++ {
		b.Set(i)
	}
	if !a.Equal(b) {
		t.Error("Fill() not equal to setting all bits individually")
	}
	if a.Hash() != b.Hash() {
		t.Error("Hash mismatch for equal sets")
	}
}

func TestCloneCopyIndependence(t *testing.T) {
	s := New(100)
	s.Set(42)
	c := s.Clone()
	c.Set(43)
	if s.Has(43) {
		t.Error("Clone shares storage with original")
	}
	d := New(100)
	d.Copy(s)
	if !d.Has(42) || d.Count() != 1 {
		t.Error("Copy did not reproduce contents")
	}
}

func TestBooleanOps(t *testing.T) {
	a := New(128)
	b := New(128)
	a.Set(1)
	a.Set(64)
	b.Set(64)
	b.Set(127)

	or := a.Clone()
	if !or.Or(b) {
		t.Error("Or reported no change")
	}
	if !or.Has(1) || !or.Has(64) || !or.Has(127) || or.Count() != 3 {
		t.Errorf("Or wrong: %v", or)
	}
	if or.Or(b) {
		t.Error("second Or reported change")
	}

	and := a.Clone()
	and.And(b)
	if and.Count() != 1 || !and.Has(64) {
		t.Errorf("And wrong: %v", and)
	}

	diff := a.Clone()
	diff.AndNot(b)
	if diff.Count() != 1 || !diff.Has(1) {
		t.Errorf("AndNot wrong: %v", diff)
	}

	xor := a.Clone()
	xor.Xor(b)
	if xor.Count() != 2 || !xor.Has(1) || !xor.Has(127) {
		t.Errorf("Xor wrong: %v", xor)
	}
}

func TestIntersectsSubset(t *testing.T) {
	a := New(64)
	b := New(64)
	a.Set(3)
	if a.Intersects(b) {
		t.Error("Intersects with empty set")
	}
	b.Set(3)
	b.Set(5)
	if !a.Intersects(b) {
		t.Error("Intersects missed common bit")
	}
	if !a.SubsetOf(b) {
		t.Error("SubsetOf false for subset")
	}
	if b.SubsetOf(a) {
		t.Error("SubsetOf true for superset")
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	a := New(10)
	b := New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("Or with mismatched sizes did not panic")
		}
	}()
	a.Or(b)
}

func TestNext(t *testing.T) {
	s := New(200)
	for _, i := range []int{5, 63, 64, 199} {
		s.Set(i)
	}
	cases := []struct{ from, want int }{
		{-5, 5}, {0, 5}, {5, 5}, {6, 63}, {63, 63}, {64, 64}, {65, 199}, {199, 199}, {200, -1},
	}
	for _, c := range cases {
		if got := s.Next(c.from); got != c.want {
			t.Errorf("Next(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if New(0).Next(0) != -1 {
		t.Error("Next on empty universe should be -1")
	}
}

func TestForEachSliceOrder(t *testing.T) {
	s := New(300)
	want := []int{0, 2, 64, 128, 255, 299}
	for _, i := range want {
		s.Set(i)
	}
	got := s.Slice()
	if len(got) != len(want) {
		t.Fatalf("Slice len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Slice[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestString(t *testing.T) {
	s := New(10)
	if s.String() != "{}" {
		t.Errorf("empty String() = %q", s.String())
	}
	s.Set(1)
	s.Set(9)
	if s.String() != "{1, 9}" {
		t.Errorf("String() = %q, want {1, 9}", s.String())
	}
}

func TestHashEqualSets(t *testing.T) {
	a := New(500)
	b := New(500)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		k := rng.Intn(500)
		a.Set(k)
		b.Set(k)
	}
	if a.Hash() != b.Hash() {
		t.Error("equal sets hash differently")
	}
	b.Flip(0)
	if a.Hash() == b.Hash() {
		t.Error("different sets hash equally (possible but suspicious for this seed)")
	}
}

// Property: Or is commutative and idempotent, De Morgan-ish identities hold.
func TestQuickProperties(t *testing.T) {
	const n = 192
	mk := func(bits []uint16) *Set {
		s := New(n)
		for _, b := range bits {
			s.Set(int(b) % n)
		}
		return s
	}
	// union commutes
	if err := quick.Check(func(xs, ys []uint16) bool {
		a, b := mk(xs), mk(ys)
		ab := a.Clone()
		ab.Or(b)
		ba := b.Clone()
		ba.Or(a)
		return ab.Equal(ba)
	}, nil); err != nil {
		t.Error(err)
	}
	// intersection is subset of both
	if err := quick.Check(func(xs, ys []uint16) bool {
		a, b := mk(xs), mk(ys)
		i := a.Clone()
		i.And(b)
		return i.SubsetOf(a) && i.SubsetOf(b)
	}, nil); err != nil {
		t.Error(err)
	}
	// a = (a∩b) ∪ (a\b)
	if err := quick.Check(func(xs, ys []uint16) bool {
		a, b := mk(xs), mk(ys)
		i := a.Clone()
		i.And(b)
		d := a.Clone()
		d.AndNot(b)
		i.Or(d)
		return i.Equal(a)
	}, nil); err != nil {
		t.Error(err)
	}
	// count consistency with Slice
	if err := quick.Check(func(xs []uint16) bool {
		a := mk(xs)
		return a.Count() == len(a.Slice())
	}, nil); err != nil {
		t.Error(err)
	}
	// xor twice restores
	if err := quick.Check(func(xs, ys []uint16) bool {
		a, b := mk(xs), mk(ys)
		c := a.Clone()
		c.Xor(b)
		c.Xor(b)
		return c.Equal(a)
	}, nil); err != nil {
		t.Error(err)
	}
}
