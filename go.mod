module eventorder

go 1.22
