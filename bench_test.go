// Benchmarks regenerating the paper's evaluation artifacts, one family per
// experiment in DESIGN.md's index (E1–E10), plus ablations of the engine's
// design choices. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers are machine-dependent; the shapes that reproduce the
// paper are (a) exponential growth of the exact queries in instance size
// (E2/E4/E7/E9 families) against flat polynomial baselines (E5/E6
// families), and (b) the must-have/could-have asymmetry: refutation-style
// MHB queries cost far more than witness-style CHB queries on satisfiable
// instances.
package eventorder

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"eventorder/internal/core"
	"eventorder/internal/gen"
	"eventorder/internal/hmw"
	"eventorder/internal/lang"
	"eventorder/internal/model"
	"eventorder/internal/race"
	"eventorder/internal/reduction"
	"eventorder/internal/sat"
	"eventorder/internal/semsched"
	"eventorder/internal/staticorder"
	"eventorder/internal/taskgraph"
	"eventorder/internal/vclock"
)

// --- shared fixtures ----------------------------------------------------

// benchFormula deterministically draws a formula with clauses of width 1–3.
func benchFormula(seed int64, n, m int) *sat.Formula {
	rng := rand.New(rand.NewSource(seed))
	f := sat.NewFormula(n)
	for j := 0; j < m; j++ {
		w := 1 + rng.Intn(3)
		if w > n {
			w = n
		}
		clause := make([]int, 0, w)
		for k := 0; k < w; k++ {
			lit := 1 + rng.Intn(n)
			if rng.Intn(2) == 0 {
				lit = -lit
			}
			clause = append(clause, lit)
		}
		f.AddClause(clause...)
	}
	return f
}

func mustInstance(b *testing.B, f *sat.Formula, style reduction.Style) *reduction.Instance {
	b.Helper()
	inst, err := reduction.Build(f, style, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

func mustAnalyzer(b *testing.B, x *model.Execution, opts core.Options) *core.Analyzer {
	b.Helper()
	a, err := core.New(x, opts)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// --- E1: Table 1 — the relation engine ----------------------------------

// BenchmarkE1_RelationEngine measures one decision of each relation kind on
// a fixed mixed workload (cold memo every iteration: the honest per-query
// cost).
func BenchmarkE1_RelationEngine(b *testing.B) {
	x, err := gen.ForkJoinTree(3)
	if err != nil {
		b.Fatal(err)
	}
	w0 := x.MustEventByLabel("work0").ID
	w1 := x.MustEventByLabel("work1").ID
	for _, kind := range core.AllRelKinds {
		b.Run(kind.String(), func(b *testing.B) {
			a := mustAnalyzer(b, x, core.Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.DropMemo()
				if _, err := a.Decide(context.Background(), kind, w0, w1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE1_BruteForceEnumeration is the definitional baseline the engine
// is validated against: enumerate every feasible interleaving.
func BenchmarkE1_BruteForceEnumeration(b *testing.B) {
	x, err := gen.ForkJoinTree(2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BruteRelations(x, core.Options{}, 5_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2/E3: Theorems 1–2 (semaphores) ------------------------------------

// BenchmarkE2_Thm1_MHB_Sem: the co-NP-hard direction — refute any
// interleaving where b begins before a ends. Nodes grow exponentially with
// the formula.
func BenchmarkE2_Thm1_MHB_Sem(b *testing.B) {
	for _, size := range []struct{ n, m int }{{1, 1}, {1, 2}, {2, 2}, {2, 3}} {
		inst := mustInstance(b, benchFormula(11, size.n, size.m), reduction.StyleSemaphore)
		b.Run(fmt.Sprintf("vars=%d/clauses=%d", size.n, size.m), func(b *testing.B) {
			a := mustAnalyzer(b, inst.X, core.Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.DropMemo()
				if _, err := a.MHB(inst.A, inst.B); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3_Thm2_CHB_Sem: the NP-hard direction — find one witness
// interleaving; cheap when the formula is satisfiable.
func BenchmarkE3_Thm2_CHB_Sem(b *testing.B) {
	for _, size := range []struct{ n, m int }{{1, 1}, {1, 2}, {2, 2}, {2, 3}} {
		inst := mustInstance(b, benchFormula(11, size.n, size.m), reduction.StyleSemaphore)
		b.Run(fmt.Sprintf("vars=%d/clauses=%d", size.n, size.m), func(b *testing.B) {
			a := mustAnalyzer(b, inst.X, core.Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.DropMemo()
				if _, err := a.CHB(inst.B, inst.A); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2_SATOracle prices the oracle side of the equivalence: CDCL on
// the same formulas (dwarfed by the event-ordering side, as Theorem 1
// predicts — the reduction direction is formula → ordering).
func BenchmarkE2_SATOracle(b *testing.B) {
	f := benchFormula(11, 2, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sat.Solve(f)
	}
}

// --- E4: Theorems 3–4 (event style) --------------------------------------

func BenchmarkE4_Thm34_Event(b *testing.B) {
	for _, size := range []struct{ n, m int }{{1, 1}, {1, 2}, {2, 2}} {
		inst := mustInstance(b, benchFormula(13, size.n, size.m), reduction.StyleEvent)
		b.Run(fmt.Sprintf("MHB/vars=%d/clauses=%d", size.n, size.m), func(b *testing.B) {
			a := mustAnalyzer(b, inst.X, core.Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.DropMemo()
				if _, err := a.MHB(inst.A, inst.B); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("CHB/vars=%d/clauses=%d", size.n, size.m), func(b *testing.B) {
			a := mustAnalyzer(b, inst.X, core.Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.DropMemo()
				if _, err := a.CHB(inst.B, inst.A); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E5: Figure 1 — task graph vs exact ----------------------------------

func figure1Execution(b *testing.B) *model.Execution {
	b.Helper()
	bld := model.NewBuilder()
	main := bld.Proc("main")
	t1 := main.Fork("t1")
	t2 := main.Fork("t2")
	t3 := main.Fork("t3")
	t1.Label("lp").Post("e")
	t1.Write("X")
	t2.Read("X")
	t2.Label("rp").Post("e")
	t3.Label("w").Wait("e")
	x, err := bld.BuildDeferred()
	if err != nil {
		b.Fatal(err)
	}
	// Observed order: forks, then t1 entirely, then t2, then t3 — the
	// paper's Figure 1b observation.
	x.Order = []model.OpID{0, 1, 2, 3, 4, 5, 6, 7}
	if err := model.Replay(x, x.Order, nil); err != nil {
		b.Fatal(err)
	}
	return x
}

func BenchmarkE5_Figure1_TaskGraph(b *testing.B) {
	x := figure1Execution(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := taskgraph.Build(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5_Figure1_ExactMHB(b *testing.B) {
	x := figure1Execution(b)
	lp := x.MustEventByLabel("lp").ID
	rp := x.MustEventByLabel("rp").ID
	a := mustAnalyzer(b, x, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.DropMemo()
		if _, err := a.MHB(lp, rp); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: polynomial baselines --------------------------------------------

func BenchmarkE6_HMW(b *testing.B) {
	x, err := gen.Mutex(4, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hmw.Analyze(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6_VectorClocks(b *testing.B) {
	x, err := gen.Mutex(4, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vclock.Compute(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6_ExactMHBFullRelation(b *testing.B) {
	x, err := gen.Mutex(3, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := mustAnalyzer(b, x, core.Options{})
		if _, err := a.Relation(context.Background(), core.RelMHB); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: scaling — the hardness made visible ------------------------------

// noiseExecution builds one enforced ordering plus n unrelated processes.
func noiseExecution(b *testing.B, n int) *model.Execution {
	b.Helper()
	bld := model.NewBuilder()
	bld.Sem("s", 0, model.SemCounting)
	pa := bld.Proc("pa")
	pa.Label("a").Nop()
	pa.V("s")
	pb := bld.Proc("pb")
	pb.P("s")
	pb.Label("b").Nop()
	for i := 0; i < n; i++ {
		bld.Proc(fmt.Sprintf("noise%d", i)).Nop()
	}
	x, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	return x
}

func BenchmarkE7_Scaling_ExactMHB(b *testing.B) {
	for _, n := range []int{1, 3, 5, 7} {
		x := noiseExecution(b, n)
		a := mustAnalyzer(b, x, core.Options{})
		ea := x.MustEventByLabel("a").ID
		eb := x.MustEventByLabel("b").ID
		b.Run(fmt.Sprintf("noise=%d", n), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.DropMemo()
				if _, err := a.MHB(ea, eb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE7_Scaling_VectorClocks(b *testing.B) {
	for _, n := range []int{1, 3, 5, 7} {
		x := noiseExecution(b, n)
		b.Run(fmt.Sprintf("noise=%d", n), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := vclock.Compute(x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8: race detection ----------------------------------------------------

func BenchmarkE8_Races_Exact(b *testing.B) {
	for _, pairs := range []int{2, 4} {
		x, _, err := gen.SeededRaces(pairs, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("pairs=%d", pairs), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := race.Detect(x, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE8_Races_VectorClockOnly(b *testing.B) {
	x, _, err := gen.SeededRaces(4, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vcRes, err := vclock.Compute(x)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range race.Candidates(x) {
			_ = vcRes.HB.Has(c.A, c.B) || vcRes.HB.Has(c.B, c.A)
		}
	}
}

// --- E9: single semaphore — generic vs symmetry-reduced -------------------

// singleSemInfeasible: n identical P;V processes (init 2) plus one process
// wanting three tokens; refuting completion explores the whole space.
func singleSemInfeasible(b *testing.B, n int) *model.Execution {
	b.Helper()
	bld := model.NewBuilder()
	bld.Sem("s", 2, model.SemCounting)
	for i := 0; i < n; i++ {
		p := bld.Proc(fmt.Sprintf("w%d", i))
		p.P("s")
		p.V("s")
	}
	g := bld.Proc("greedy")
	g.P("s")
	g.P("s")
	g.P("s")
	x, err := bld.BuildDeferred()
	if err != nil {
		b.Fatal(err)
	}
	return x
}

func BenchmarkE9_SingleSem_Generic(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		x := singleSemInfeasible(b, n)
		b.Run(fmt.Sprintf("procs=%d", n+1), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := core.NewUnscheduled(x, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				ok, err := a.CanComplete()
				if err != nil {
					b.Fatal(err)
				}
				if ok {
					b.Fatal("infeasible instance completed")
				}
			}
		})
	}
}

func BenchmarkE9_SingleSem_Symmetry(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		x := singleSemInfeasible(b, n)
		in, err := semsched.FromExecution(x)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("procs=%d", n+1), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if in.CanComplete() {
					b.Fatal("infeasible instance completed")
				}
			}
		})
	}
}

func BenchmarkE9_SMMCC(b *testing.B) {
	x := singleSemInfeasible(b, 8)
	in, err := semsched.FromExecution(x)
	if err != nil {
		b.Fatal(err)
	}
	tasks, k := in.ToSMMCC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := semsched.SMMCCDecide(tasks, k)
		if err != nil {
			b.Fatal(err)
		}
		if ok {
			b.Fatal("infeasible instance completed")
		}
	}
}

// --- E10: feasibility with vs without D ------------------------------------

func BenchmarkE10_IgnoreD(b *testing.B) {
	x := figure1Execution(b)
	lp := x.MustEventByLabel("lp").ID
	rp := x.MustEventByLabel("rp").ID
	b.Run("withD", func(b *testing.B) {
		a := mustAnalyzer(b, x, core.Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.DropMemo()
			if _, err := a.MHB(lp, rp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ignoreD", func(b *testing.B) {
		a := mustAnalyzer(b, x, core.Options{IgnoreData: true})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.DropMemo()
			if _, err := a.MHB(lp, rp); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E11: Monte-Carlo sampling ----------------------------------------------

func BenchmarkE11_Sampling(b *testing.B) {
	x, err := gen.ForkJoinTree(3)
	if err != nil {
		b.Fatal(err)
	}
	for _, samples := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("samples=%d", samples), func(b *testing.B) {
			a := mustAnalyzer(b, x, core.Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.SampleRelations(samples, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E12: static guaranteed orderings -----------------------------------------

func BenchmarkE12_StaticAnalysis(b *testing.B) {
	prog, err := lang.Parse(`
event ready
var cfgv
proc main {
    setup: cfgv := 1
    fork worker
    fork helper
    join worker
    join helper
    teardown: skip
}
proc worker { w1: cfgv := cfgv + 1  post(ready) }
proc helper { wait(ready)  h1: skip }
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := staticorder.Analyze(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Witness extraction --------------------------------------------------------

func BenchmarkWitnessExtraction(b *testing.B) {
	x, err := gen.ForkJoinTree(3)
	if err != nil {
		b.Fatal(err)
	}
	w0 := x.MustEventByLabel("work0").ID
	w1 := x.MustEventByLabel("work1").ID
	a := mustAnalyzer(b, x, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.DropMemo()
		w, err := a.WitnessSchedule(context.Background(), core.RelCCW, w0, w1)
		if err != nil {
			b.Fatal(err)
		}
		if !w.Holds {
			b.Fatal("workers should be concurrent")
		}
	}
}

// --- Ablations -------------------------------------------------------------

// BenchmarkAblation_Memoization: the engine with and without state
// memoization; the gap is the design choice DESIGN.md calls out. The
// workload is deliberately tiny: without memoization the search walks the
// interleaving TREE instead of the state DAG, and even noise=3 already
// takes minutes.
func BenchmarkAblation_Memoization(b *testing.B) {
	x := noiseExecution(b, 2)
	ea := x.MustEventByLabel("a").ID
	eb := x.MustEventByLabel("b").ID
	b.Run("memo=on", func(b *testing.B) {
		a := mustAnalyzer(b, x, core.Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.DropMemo()
			if _, err := a.MHB(ea, eb); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("memo=off", func(b *testing.B) {
		a := mustAnalyzer(b, x, core.Options{DisableMemo: true})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.MHB(ea, eb); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_WarmMemo: the completion memo is the one table that
// persists across queries (the per-query interval-monitor memos cannot —
// they depend on the event pair). Measure a warm CanComplete, which is a
// single memo hit, against its cold cost.
func BenchmarkAblation_WarmMemo(b *testing.B) {
	x := noiseExecution(b, 5)
	a := mustAnalyzer(b, x, core.Options{})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.DropMemo()
			if _, err := a.CanComplete(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		if _, err := a.CanComplete(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.CanComplete(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// relationParallelBaseline reproduces the deleted core.RelationParallel
// path for the ablations that measure it: ordered pairs sharded over
// worker goroutines, each deciding its claims on a private analyzer —
// every pair a from-scratch search, with no memo sharing across workers.
func relationParallelBaseline(x *model.Execution, opts core.Options, kind core.RelKind, workers int) (*model.Relation, error) {
	n := len(x.Events)
	type pair struct{ a, b model.EventID }
	pairs := make([]pair, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				pairs = append(pairs, pair{model.EventID(i), model.EventID(j)})
			}
		}
	}
	if workers < 1 {
		workers = 1
	}
	rel := model.NewRelation(kind.String(), n)
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		next     atomic.Int64
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, err := core.New(x, opts)
			if err != nil {
				fail(err)
				return
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				holds, err := a.Decide(context.Background(), kind, pairs[i].a, pairs[i].b)
				if err != nil {
					fail(err)
					return
				}
				if holds {
					mu.Lock()
					rel.Set(pairs[i].a, pairs[i].b)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return rel, firstErr
}

// BenchmarkAblation_ParallelRelation: fan the per-pair decisions over
// goroutines; the trade is private analyzers (no shared completion memo)
// against multicore throughput.
func BenchmarkAblation_ParallelRelation(b *testing.B) {
	x, err := gen.Barrier(3)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := relationParallelBaseline(x, core.Options{}, core.RelMHB, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_MHBFullRelation compares the naive all-pairs MHB
// computation against the transitivity-pruned fast path.
func BenchmarkAblation_MHBFullRelation(b *testing.B) {
	x, err := gen.Barrier(3)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := mustAnalyzer(b, x, core.Options{})
			if _, err := a.Relation(context.Background(), core.RelMHB); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := mustAnalyzer(b, x, core.Options{})
			if _, err := a.MHBRelation(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_SATSolver compares the CDCL solver against brute force
// on a formula near the hard ratio.
func BenchmarkAblation_SATSolver(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	f := sat.Random3CNF(rng, 14, 60)
	b.Run("cdcl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sat.Solve(f)
		}
	})
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sat.SolveBrute(f)
		}
	})
}

// --- E13: batch matrix engine amortization -------------------------------

// matrixBenchWorkload returns the instance the matrix benchmarks share: a
// semaphore barrier, whose matrix forces the engine through a state space
// that per-pair search re-explores from scratch for every pair.
func matrixBenchWorkload(b *testing.B) *model.Execution {
	b.Helper()
	x, err := gen.Barrier(5)
	if err != nil {
		b.Fatal(err)
	}
	return x
}

// BenchmarkMatrix_PerPairSequential is the baseline: one Decide per ordered
// pair, memo dropped between iterations so each sample pays the full cost.
func BenchmarkMatrix_PerPairSequential(b *testing.B) {
	x := matrixBenchWorkload(b)
	a := mustAnalyzer(b, x, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.DropMemo()
		if _, err := a.Relation(context.Background(), core.RelCCW); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatrix_RelationParallel is the old fan-out: per-pair decisions
// sharded over goroutines with no shared exploration.
func BenchmarkMatrix_RelationParallel(b *testing.B) {
	x := matrixBenchWorkload(b)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := relationParallelBaseline(x, core.Options{}, core.RelCCW, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMatrix_Batch is the shared-memo batch engine: one exploration of
// the feasibility space answers every pair (and all six kinds) at once.
func BenchmarkMatrix_Batch(b *testing.B) {
	x := matrixBenchWorkload(b)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := mustAnalyzer(b, x, core.Options{})
				if _, err := a.Matrix(context.Background(), []core.RelKind{core.RelCCW}, core.MatrixOpts{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMatrix_BatchAllKinds computes all six relation matrices from the
// single shared exploration — the marginal cost over one kind is assembly
// only.
func BenchmarkMatrix_BatchAllKinds(b *testing.B) {
	x := matrixBenchWorkload(b)
	for i := 0; i < b.N; i++ {
		a := mustAnalyzer(b, x, core.Options{})
		if _, err := a.Matrix(context.Background(), nil, core.MatrixOpts{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
