package eventorder

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles the command-line tools once into a temp dir and
// returns their paths. Skipped in -short mode (it shells out to go build).
func buildTools(t *testing.T) map[string]string {
	t.Helper()
	if testing.Short() {
		t.Skip("e2e builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	tools := map[string]string{}
	for _, name := range []string{"eventorder", "satsolve", "reduce", "experiments"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
		tools[name] = out
	}
	return tools
}

func runTool(t *testing.T, path string, stdin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(path, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v", path, args, err)
	}
	return buf.String(), code
}

func TestE2EPipeline(t *testing.T) {
	tools := buildTools(t)
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")

	// run: record the handshake corpus program.
	out, code := runTool(t, tools["eventorder"], "", "run", "-o", trace, "testdata/handshake.evo")
	if code != 0 {
		t.Fatalf("run failed (%d): %s", code, out)
	}
	if _, err := os.Stat(trace); err != nil {
		t.Fatalf("trace not written: %v", err)
	}

	// analyze: a MHB b must be true.
	out, code = runTool(t, tools["eventorder"], "", "analyze", "-rel", "MHB", "-a", "a", "-b", "b", trace)
	if code != 0 || !strings.Contains(out, "a MHB b: true") {
		t.Fatalf("analyze output (%d): %s", code, out)
	}
	// analyze -all matrix.
	out, code = runTool(t, tools["eventorder"], "", "analyze", "-rel", "CCW", "-all", trace)
	if code != 0 || !strings.Contains(out, "CCW") {
		t.Fatalf("analyze -all output (%d): %s", code, out)
	}
	// analyze -witness: CHB(b,a) is false, no schedule.
	out, code = runTool(t, tools["eventorder"], "", "analyze", "-rel", "CHB", "-a", "b", "-b", "a", "-witness", trace)
	if code != 0 || !strings.Contains(out, "b CHB a: false") {
		t.Fatalf("analyze -witness output (%d): %s", code, out)
	}
	// analyze -witness MHB(b,a) false → counterexample schedule printed.
	out, code = runTool(t, tools["eventorder"], "", "analyze", "-rel", "MHB", "-a", "b", "-b", "a", "-witness", trace)
	if code != 0 || !strings.Contains(out, "counterexample schedule") {
		t.Fatalf("analyze -witness counterexample (%d): %s", code, out)
	}
	// analyze -all -dot: Hasse diagram.
	out, code = runTool(t, tools["eventorder"], "", "analyze", "-rel", "MHB", "-all", "-dot", trace)
	if code != 0 || !strings.Contains(out, "digraph MHB") {
		t.Fatalf("analyze -dot output (%d): %s", code, out)
	}
	// races on the handshake: none.
	out, code = runTool(t, tools["eventorder"], "", "races", trace)
	if code != 0 || !strings.Contains(out, "exact races") {
		t.Fatalf("races output (%d): %s", code, out)
	}
	// show.
	out, code = runTool(t, tools["eventorder"], "", "show", trace)
	if code != 0 || !strings.Contains(out, "labels") {
		t.Fatalf("show output (%d): %s", code, out)
	}
	// hmw (semaphore trace).
	out, code = runTool(t, tools["eventorder"], "", "hmw", trace)
	if code != 0 || !strings.Contains(out, "HMW3") {
		t.Fatalf("hmw output (%d): %s", code, out)
	}
	// vclock.
	out, code = runTool(t, tools["eventorder"], "", "vclock", trace)
	if code != 0 || !strings.Contains(out, "clock") {
		t.Fatalf("vclock output (%d): %s", code, out)
	}
	// sample.
	out, code = runTool(t, tools["eventorder"], "", "sample", "-n", "20", trace)
	if code != 0 || !strings.Contains(out, "sampled") {
		t.Fatalf("sample output (%d): %s", code, out)
	}
	// explore the dining philosophers.
	out, code = runTool(t, tools["eventorder"], "", "explore", "testdata/dining2.evo")
	if code != 0 || !strings.Contains(out, "can deadlock: true") {
		t.Fatalf("explore output (%d): %s", code, out)
	}
	// compare: side-by-side table.
	out, code = runTool(t, tools["eventorder"], "", "compare", trace)
	if code != 0 || !strings.Contains(out, "exact MHB") || !strings.Contains(out, "HMW3") {
		t.Fatalf("compare output (%d): %s", code, out)
	}
	// static orderings of the pipeline corpus program.
	out, code = runTool(t, tools["eventorder"], "", "static", "testdata/pipeline.evo")
	if code != 0 || !strings.Contains(out, "w0 ≺ w1") {
		t.Fatalf("static output (%d): %s", code, out)
	}
	// op-granular run of the cross-dependence program.
	granTrace := filepath.Join(dir, "crossdep.json")
	out, code = runTool(t, tools["eventorder"], "", "run", "-op-granular", "-seed", "3", "-o", granTrace, "testdata/crossdep.evo")
	if code != 0 {
		t.Fatalf("granular run failed (%d): %s", code, out)
	}
	out, code = runTool(t, tools["eventorder"], "", "show", granTrace)
	if code != 0 || !strings.Contains(out, "labels") {
		t.Fatalf("show on granular trace (%d): %s", code, out)
	}
}

func TestE2ETaskgraphOnEventTrace(t *testing.T) {
	tools := buildTools(t)
	dir := t.TempDir()
	trace := filepath.Join(dir, "fig1.json")
	out, code := runTool(t, tools["eventorder"], "", "run", "-seed", "2", "-o", trace, "testdata/figure1.evo")
	if code != 0 {
		t.Fatalf("run failed (%d): %s", code, out)
	}
	out, code = runTool(t, tools["eventorder"], "", "taskgraph", trace)
	if code != 0 || !strings.Contains(out, "task graph") {
		t.Fatalf("taskgraph output (%d): %s", code, out)
	}
	out, code = runTool(t, tools["eventorder"], "", "taskgraph", "-dot", trace)
	if code != 0 || !strings.Contains(out, "digraph") {
		t.Fatalf("taskgraph -dot output (%d): %s", code, out)
	}
}

func TestE2ESatsolve(t *testing.T) {
	tools := buildTools(t)
	out, code := runTool(t, tools["satsolve"], "p cnf 2 2\n1 2 0\n-1 0\n", "-model")
	if code != 10 || !strings.Contains(out, "SATISFIABLE") {
		t.Fatalf("satsolve SAT: code=%d out=%s", code, out)
	}
	out, code = runTool(t, tools["satsolve"], "p cnf 1 2\n1 0\n-1 0\n", "-stats")
	if code != 20 || !strings.Contains(out, "UNSATISFIABLE") {
		t.Fatalf("satsolve UNSAT: code=%d out=%s", code, out)
	}
	out, code = runTool(t, tools["satsolve"], "", "-random-vars", "5", "-random-clauses", "10", "-dump")
	if code != 0 || !strings.Contains(out, "p cnf 5 10") {
		t.Fatalf("satsolve dump: code=%d out=%s", code, out)
	}
}

func TestE2EReduce(t *testing.T) {
	tools := buildTools(t)
	dir := t.TempDir()
	cnf := filepath.Join(dir, "f.cnf")
	if err := os.WriteFile(cnf, []byte("p cnf 1 2\n1 0\n-1 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := runTool(t, tools["reduce"], "", "-style", "event", "-check", cnf)
	if code != 0 {
		t.Fatalf("reduce failed (%d): %s", code, out)
	}
	if !strings.Contains(out, "a: skip") || !strings.Contains(out, "equivalences hold") {
		t.Fatalf("reduce output missing pieces: %s", out)
	}
	// The emitted program must itself be runnable by the eventorder CLI.
	prog := filepath.Join(dir, "reduction.evo")
	progSrc := out[:strings.Index(out, "check:")]
	if err := os.WriteFile(prog, []byte(progSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(dir, "red.json")
	out, code = runTool(t, tools["eventorder"], "", "run", "-tries", "256", "-o", trace, prog)
	if code != 0 {
		t.Fatalf("running emitted reduction program failed (%d): %s", code, out)
	}
	out, code = runTool(t, tools["eventorder"], "", "analyze", "-rel", "MHB", "-a", "a", "-b", "b", trace)
	if code != 0 || !strings.Contains(out, "a MHB b: true") {
		t.Fatalf("analyze on reduction trace (%d): %s", code, out)
	}
}

func TestE2EExperimentsQuick(t *testing.T) {
	tools := buildTools(t)
	out, code := runTool(t, tools["experiments"], "", "-quick", "-run", "e5,e10")
	if code != 0 {
		t.Fatalf("experiments failed (%d): %s", code, out)
	}
	for _, want := range []string{"e5:", "e10:", "claim reproduced"} {
		if !strings.Contains(out, want) {
			t.Fatalf("experiments output missing %q:\n%s", want, out)
		}
	}
	out, code = runTool(t, tools["experiments"], "", "-list")
	if code != 0 || !strings.Contains(out, "e11") {
		t.Fatalf("experiments -list (%d): %s", code, out)
	}
}
