package eventorder

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExportedIdentifiersDocumented enforces the documentation deliverable:
// every exported top-level declaration in every non-test source file must
// carry a doc comment. Grouped const/var/type blocks may document the
// block; a field or method promoted through an alias is out of scope.
func TestExportedIdentifiersDocumented(t *testing.T) {
	var violations []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for _, decl := range file.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				if dd.Name.IsExported() && dd.Doc == nil {
					violations = append(violations,
						fmt.Sprintf("%s: func %s", fset.Position(dd.Pos()), dd.Name.Name))
				}
			case *ast.GenDecl:
				blockDocumented := dd.Doc != nil
				for _, spec := range dd.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && !blockDocumented && sp.Doc == nil && sp.Comment == nil {
							violations = append(violations,
								fmt.Sprintf("%s: type %s", fset.Position(sp.Pos()), sp.Name.Name))
						}
					case *ast.ValueSpec:
						for _, name := range sp.Names {
							if name.IsExported() && !blockDocumented && sp.Doc == nil && sp.Comment == nil {
								violations = append(violations,
									fmt.Sprintf("%s: %s", fset.Position(sp.Pos()), name.Name))
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Errorf("undocumented exported identifier: %s", v)
	}
}

// TestAllPackagesHaveDocComment: every package directory's files must
// include exactly one package doc comment (on some file).
func TestAllPackagesHaveDocComment(t *testing.T) {
	documented := map[string]bool{}
	seen := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		seen[dir] = true
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		if file.Doc != nil {
			documented[dir] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for dir := range seen {
		if !documented[dir] {
			t.Errorf("package in %s has no package doc comment", dir)
		}
	}
}
