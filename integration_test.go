package eventorder

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"eventorder/internal/traceio"
)

// loadProgram reads and parses a testdata program.
func loadProgram(t *testing.T, name string) *Program {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ParseProgram(string(src))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return prog
}

// runCorpus executes one corpus program and round-trips its trace.
func runCorpus(t *testing.T, name string, seed int64) *Execution {
	t.Helper()
	prog := loadProgram(t, name)
	res, err := RunProgram(prog, seed)
	if err != nil {
		t.Fatalf("%s: run: %v", name, err)
	}
	var buf bytes.Buffer
	if err := traceio.SaveExecution(&buf, res.X); err != nil {
		t.Fatalf("%s: save: %v", name, err)
	}
	x, err := traceio.LoadExecution(&buf)
	if err != nil {
		t.Fatalf("%s: load: %v", name, err)
	}
	return x
}

// expectation is one labeled relation query with its expected verdict.
type expectation struct {
	kind   RelKind
	a, b   string
	want   bool
	reason string
}

// checkExpectations runs queries against an execution.
func checkExpectations(t *testing.T, name string, x *Execution, opts Options, exps []expectation) {
	t.Helper()
	an, err := Analyze(x, opts)
	if err != nil {
		t.Fatalf("%s: analyze: %v", name, err)
	}
	for _, e := range exps {
		ea, ok := x.EventByLabel(e.a)
		if !ok {
			t.Errorf("%s: no event %q (labels %v)", name, e.a, x.Labels())
			continue
		}
		eb, ok := x.EventByLabel(e.b)
		if !ok {
			t.Errorf("%s: no event %q (labels %v)", name, e.b, x.Labels())
			continue
		}
		got, err := an.Decide(context.Background(), e.kind, ea.ID, eb.ID)
		if err != nil {
			t.Fatalf("%s: %v(%s,%s): %v", name, e.kind, e.a, e.b, err)
		}
		if got != e.want {
			t.Errorf("%s: %v(%s,%s) = %v, want %v (%s)", name, e.kind, e.a, e.b, got, e.want, e.reason)
		}
	}
}

func TestCorpusHandshake(t *testing.T) {
	x := runCorpus(t, "handshake.evo", 1)
	checkExpectations(t, "handshake", x, Options{}, []expectation{
		{MHB, "a", "b", true, "semaphore forces the order"},
		{CHB, "b", "a", false, "reverse impossible"},
		{CCW, "a", "b", false, "never concurrent"},
		{MOW, "a", "b", true, "always ordered"},
	})
}

func TestCorpusBarrier(t *testing.T) {
	x := runCorpus(t, "barrier.evo", 3)
	var exps []expectation
	for _, before := range []string{"before0", "before1"} {
		for _, after := range []string{"after0", "after1"} {
			exps = append(exps, expectation{MHB, before, after, true, "barrier separates phases"})
		}
	}
	exps = append(exps,
		expectation{CCW, "before0", "before1", true, "pre-barrier work is parallel"},
		expectation{CCW, "after0", "after1", true, "post-barrier work is parallel"},
	)
	checkExpectations(t, "barrier", x, Options{}, exps)
}

func TestCorpusPipeline(t *testing.T) {
	x := runCorpus(t, "pipeline.evo", 1)
	checkExpectations(t, "pipeline", x, Options{}, []expectation{
		{MHB, "w0", "w1", true, "stage order"},
		{MHB, "w1", "w2", true, "stage order"},
		{MHB, "w0", "w2", true, "transitive"},
		{CCW, "w1", "obs", true, "observer races stage1"},
		{MHB, "w0", "obs", true, "observer waits stage0"},
	})
	// Race detection: the pipeline has no conflicting unordered accesses.
	rep, err := DetectRaces(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Exact) != 0 {
		t.Errorf("pipeline should be race-free, found %v", rep.Exact)
	}
}

func TestCorpusFigure1(t *testing.T) {
	prog := loadProgram(t, "figure1.evo")
	// Find an observation where t2 took the then-branch.
	var x *Execution
	for seed := int64(1); seed < 200; seed++ {
		res, err := RunProgram(prog, seed)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := res.X.EventByLabel("rp"); ok {
			x = res.X
			break
		}
	}
	if x == nil {
		t.Fatal("no observation took the then-branch")
	}
	checkExpectations(t, "figure1", x, Options{}, []expectation{
		{MHB, "lp", "rp", true, "data dependence orders the posts"},
		{CHB, "rp", "lp", false, "reverse impossible with D"},
	})
	checkExpectations(t, "figure1/ignoreD", x, Options{IgnoreData: true}, []expectation{
		{MHB, "lp", "rp", false, "ordering vanishes without D"},
	})
	// The task graph misses the ordering.
	tg, err := BuildTaskGraph(x)
	if err != nil {
		t.Fatal(err)
	}
	lp := x.MustEventByLabel("lp").ID
	rp := x.MustEventByLabel("rp").ID
	if ok, _ := tg.HasPath(lp, rp); ok {
		t.Error("task graph should have no lp → rp path")
	}
}

func TestCorpusDiningPhilosophers(t *testing.T) {
	prog := loadProgram(t, "dining2.evo")
	// Model checking: both deadlock and completion are reachable.
	res, err := ExploreProgram(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CanDeadlock {
		t.Error("dining philosophers deadlock not found")
	}
	if !res.CanTerminate {
		t.Error("dining philosophers completion not found")
	}
	for _, vars := range res.Terminal {
		if vars["meals"] != 2 {
			t.Errorf("terminal meals = %d, want 2", vars["meals"])
		}
	}
	// A completed observation: the two meals never overlap (forks are
	// mutual exclusion), and the meal counter updates never race.
	run, err := RunProgram(prog, 5)
	if err != nil {
		t.Fatal(err)
	}
	checkExpectations(t, "dining2", run.X, Options{}, []expectation{
		{MOW, "eat1", "eat2", true, "fork mutual exclusion"},
		{CCW, "eat1", "eat2", false, "never concurrent"},
	})
	rep, err := DetectRaces(run.X, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Exact) != 0 {
		t.Errorf("meal updates raced: %v", rep.Exact)
	}
}

// TestCorpusAllParseAndFormat ensures the whole corpus parses and the
// printer round-trips it.
func TestCorpusAllParseAndFormat(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".evo" {
			continue
		}
		count++
		prog := loadProgram(t, e.Name())
		text := FormatProgram(prog)
		if _, err := ParseProgram(text); err != nil {
			t.Errorf("%s: formatted output does not reparse: %v", e.Name(), err)
		}
	}
	if count < 5 {
		t.Errorf("corpus has only %d programs", count)
	}
}
